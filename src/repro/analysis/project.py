"""Whole-project model for flow/interprocedural lint rules.

The flow rules in :mod:`repro.analysis.flow_rules` need facts that span
files: which module-level symbols exist, what every import resolves to,
which counter names each module emits, where process-pool payloads come
from, and what the per-function CFG analyses concluded. Re-deriving all
of that from raw ASTs on every run would defeat the incremental cache,
so the model is built from **per-file summaries**:

* :func:`summarize_file` distills one parsed
  :class:`~repro.analysis.engine.SourceFile` into a JSON-serializable
  :class:`FileSummary` — symbols, imports, constants, harvested counter
  names, stats-threading call facts (with the
  :class:`~repro.analysis.dataflow.OptionalNoneLattice` state at each
  call), pool-submission payloads, and ownership-filter facts;
* :class:`ProjectModel` aggregates the summaries, maps logical paths to
  dotted module names, and resolves names across import chains
  (following re-exports through ``__init__`` modules), giving the rules
  an approximate call/symbol graph over ``src/repro``.

Because summaries are plain data, the cache stores them verbatim: a
warm run rebuilds the project model (cheap dict work) without parsing a
single unchanged file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .cfg import build_cfg
from .dataflow import (
    Analysis,
    NONE,
    OptionalNoneLattice,
    ReachingDefinitions,
    solve_forward,
)

#: Tracer recording methods whose first argument is a counter name.
COUNTER_METHODS = ("incr", "peak", "observe", "timer", "add_time", "note")

#: Pool dispatch methods (mirrors the node-level spawn-safety rule).
POOL_DISPATCH = frozenset({
    "submit", "map", "starmap", "apply", "apply_async",
    "map_async", "starmap_async", "imap", "imap_unordered",
})


# ----------------------------------------------------------------------
# Module names
# ----------------------------------------------------------------------
def module_name_for(logical: str) -> Optional[str]:
    """Dotted module name for a logical path, or ``None`` if non-package.

    ``src/repro/parallel/worker.py`` → ``repro.parallel.worker``;
    ``src/repro/kernels/__init__.py`` → ``repro.kernels``.
    """
    parts = [p for p in logical.split("/") if p]
    if not parts or not parts[-1].endswith(".py"):
        return None
    if parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


# ----------------------------------------------------------------------
# Summary dataclass
# ----------------------------------------------------------------------
@dataclass
class FileSummary:
    """Everything the project-level rules need from one file."""

    logical: str
    module: Optional[str] = None
    is_package: bool = False
    #: Module-level symbols: name -> {kind, line, accepts_stats}
    defs: Dict[str, Dict] = field(default_factory=dict)
    #: Import bindings: local name -> {module, name, line}; ``name`` is
    #: None for plain ``import module [as alias]`` bindings.
    imports: Dict[str, Dict] = field(default_factory=dict)
    #: Module-level string constants (counter-prefix building blocks).
    constants: Dict[str, str] = field(default_factory=dict)
    #: Counter/timer/note emissions: {name, kind, line, col, resolved}.
    counters: List[Dict] = field(default_factory=list)
    #: Calls made while ``stats`` may be non-None, without forwarding it.
    stats_calls: List[Dict] = field(default_factory=list)
    #: Process-pool submissions: payload + task-constructor provenance.
    pool_submits: List[Dict] = field(default_factory=list)
    #: Ownership-filter violations found by the per-function analysis.
    ownership: List[Dict] = field(default_factory=list)
    #: Names bound only inside functions (closures / local lambdas).
    local_callables: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "logical": self.logical,
            "module": self.module,
            "is_package": self.is_package,
            "defs": self.defs,
            "imports": self.imports,
            "constants": self.constants,
            "counters": self.counters,
            "stats_calls": self.stats_calls,
            "pool_submits": self.pool_submits,
            "ownership": self.ownership,
            "local_callables": self.local_callables,
        }

    @staticmethod
    def from_dict(data: Dict) -> "FileSummary":
        return FileSummary(
            logical=data["logical"],
            module=data.get("module"),
            is_package=bool(data.get("is_package")),
            defs=dict(data.get("defs", {})),
            imports=dict(data.get("imports", {})),
            constants=dict(data.get("constants", {})),
            counters=list(data.get("counters", [])),
            stats_calls=list(data.get("stats_calls", [])),
            pool_submits=list(data.get("pool_submits", [])),
            ownership=list(data.get("ownership", [])),
            local_callables=list(data.get("local_callables", [])),
        )


# ----------------------------------------------------------------------
# Expression helpers
# ----------------------------------------------------------------------
def _params_of(node) -> List[str]:
    args = node.args
    return [
        a.arg
        for a in (
            list(getattr(args, "posonlyargs", []))
            + list(args.args)
            + list(args.kwonlyargs)
        )
    ]


def _accepts_stats(node) -> bool:
    # An explicit `stats` parameter only: a bare ``**kwargs`` callee
    # technically accepts ``stats=`` but gives no signal it uses it.
    return "stats" in _params_of(node)


def _resolve_name_expr(node: ast.AST, constants: Dict[str, str]) -> Optional[str]:
    """Static string value of a counter-name expression.

    Handles literals, ``+`` concatenation, module-level constants and
    f-strings — formatted fields become a ``*`` wildcard, matching the
    glossary's ``NN`` placeholder convention.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _resolve_name_expr(node.left, constants)
        right = _resolve_name_expr(node.right, constants)
        if left is not None and right is not None:
            return left + right
        return None
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            elif isinstance(value, ast.FormattedValue):
                parts.append("*")
            else:
                return None
        return "".join(parts)
    return None


def _mentions_name(node: ast.AST, name: str) -> bool:
    """Does ``node`` reference ``name`` as a variable or attribute?

    ``self.stats`` counts as mentioning ``stats`` — forwarding a stored
    copy of the telemetry bag satisfies the threading contract just as
    well as forwarding the parameter itself.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == name:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == name:
            return True
    return False


def _callee_label(func: ast.AST) -> Optional[str]:
    """``"name"`` or ``"alias.attr"`` for resolvable callees, else None."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return f"{func.value.id}.{func.attr}"
    return None


def _stmt_header_exprs(stmt: ast.AST) -> List[ast.AST]:
    """Expressions evaluated *at* ``stmt`` (not in nested blocks)."""
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    if isinstance(stmt, ast.Try) or isinstance(stmt, ast.ExceptHandler):
        return []
    return [stmt]


def _calls_at(stmt: ast.AST) -> List[ast.Call]:
    out = []
    for expr in _stmt_header_exprs(stmt):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                out.append(sub)
    return out


# ----------------------------------------------------------------------
# Ownership-filter recognition
# ----------------------------------------------------------------------
def _is_owner_call(node: ast.AST) -> bool:
    """A call to the partition ownership function over a right endpoint."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name is None or "owner" not in name.lower():
        return False
    # Right-endpoint contract: the probed instant must be a `.hi`.
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "hi"
        for arg in node.args
        for sub in ast.walk(arg)
    )


def _owner_compare_kind(test: ast.AST) -> Optional[str]:
    """``"eq"``/``"neq"`` when ``test`` compares owner(…hi…) to a shard."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    left, right = test.left, test.comparators[0]
    pair = (left, right)
    if not any(_is_owner_call(x) for x in pair):
        return None
    other = right if _is_owner_call(left) else left
    if not _mentions_shard(other):
        return None
    if isinstance(test.ops[0], ast.Eq):
        return "eq"
    if isinstance(test.ops[0], ast.NotEq):
        return "neq"
    return None


def _mentions_shard(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "shard" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "shard" in sub.attr.lower():
            return True
    return False


def _is_filtered_expr(node: ast.AST) -> bool:
    """A comprehension whose filters include the ownership check."""
    if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
        for gen in node.generators:
            for cond in gen.ifs:
                if _owner_compare_kind(cond) == "eq":
                    return True
    return False


class _OwnershipGuard(Analysis):
    """True iff an ownership check passed on every path since loop entry."""

    def initial(self):
        return False

    def join(self, a, b):
        return a and b

    def transfer(self, stmt, state):
        return state

    def refine(self, label, state):
        if label is None:
            return state
        kind, test = label
        if kind == "loop-body":
            return False  # new iteration: the previous row's check is void
        cmp = _owner_compare_kind(test) if not isinstance(
            test, (ast.For, ast.AsyncFor)
        ) else None
        if cmp == "eq" and kind == "true":
            return True
        if cmp == "neq" and kind == "false":
            return True
        return state


# ----------------------------------------------------------------------
# Per-function machinery for the summarizer
# ----------------------------------------------------------------------
class _FunctionFacts:
    """CFG + solved lattices for one function, built lazily."""

    def __init__(self, func) -> None:
        self.func = func
        self.cfg = build_cfg(func)
        self.rd = ReachingDefinitions(_params_of(func))
        self.rd_solution = solve_forward(self.cfg, self.rd)
        self._stmt_of: Dict[int, ast.AST] = {}
        for block in self.cfg.blocks.values():
            for stmt in block.stmts:
                for expr in _stmt_header_exprs(stmt):
                    for sub in ast.walk(expr):
                        self._stmt_of[id(sub)] = stmt

    def stmt_of(self, node: ast.AST) -> Optional[ast.AST]:
        return self._stmt_of.get(id(node))

    def definitions(self, node: ast.AST, name: str):
        """Reaching definitions of ``name`` at the stmt holding ``node``."""
        stmt = self.stmt_of(node)
        if stmt is None:
            return None
        state = self.rd_solution.before(stmt)
        if state is None:
            return None
        return self.rd.definitions(state, name)

    def statements(self) -> Iterable[ast.AST]:
        for block in self.cfg.blocks.values():
            for stmt in block.stmts:
                yield stmt


def _function_nodes(tree: ast.Module):
    """Top-level functions and methods (not nested functions)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield sub


def _uses_stats_var(func) -> bool:
    if "stats" in _params_of(func):
        return True
    return any(
        isinstance(sub, ast.Name) and sub.id == "stats"
        for sub in ast.walk(func)
    )


def _appends_to(facts: _FunctionFacts, var: str) -> List[Tuple[ast.AST, ast.Call]]:
    """``(stmt, call)`` pairs for every ``var.append(...)`` in the body."""
    out = []
    for stmt in facts.statements():
        for call in _calls_at(stmt):
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "append"
                and isinstance(func.value, ast.Name)
                and func.value.id == var
                and call.args
            ):
                out.append((stmt, call))
    return out


def _value_passes_ownership(
    facts: _FunctionFacts,
    guard_solution,
    node: ast.AST,
    at: ast.AST,
    depth: int = 0,
) -> bool:
    """Does ``node`` (used at statement ``at``) carry only filtered rows?"""
    if depth > 3:
        return False
    if _is_filtered_expr(node):
        return True
    if isinstance(node, (ast.List, ast.Tuple)) and not node.elts:
        return True  # the empty literal itself holds nothing unfiltered
    if isinstance(node, ast.Name):
        defs = facts.definitions(at, node.id)
        if not defs:
            return False
        for stmt, value in defs:
            if stmt is None:  # parameter: provenance unknown
                return False
            if value is not None and _is_filtered_expr(value):
                continue
            if value is not None and isinstance(value, (ast.List, ast.Tuple)) and not value.elts:
                pass  # empty init: appends decide below
            elif value is None and isinstance(stmt, ast.AnnAssign) and (
                stmt.value is None
                or (isinstance(stmt.value, ast.List) and not stmt.value.elts)
            ):
                pass
            else:
                return False
        # Every non-comprehension definition is an empty list: each
        # append into it must be filtered or ownership-guarded.
        for stmt, call in _appends_to(facts, node.id):
            arg = call.args[0]
            if _value_passes_ownership(facts, guard_solution, arg, arg, depth + 1):
                continue
            guarded = guard_solution.before(stmt)
            if guarded is not True:
                return False
        return True
    return False


# ----------------------------------------------------------------------
# The summarizer
# ----------------------------------------------------------------------
def summarize_file(sf) -> FileSummary:
    """Distill one parsed source file into a :class:`FileSummary`."""
    tree = sf.tree
    logical = sf.logical
    summary = FileSummary(
        logical=logical,
        module=module_name_for(logical),
        is_package=logical.endswith("/__init__.py"),
    )

    _harvest_symbols(tree, summary)
    _harvest_counters(tree, summary)

    facts_cache: Dict[int, _FunctionFacts] = {}

    def facts_for(func) -> _FunctionFacts:
        cached = facts_cache.get(id(func))
        if cached is None:
            cached = _FunctionFacts(func)
            facts_cache[id(func)] = cached
        return cached

    for func in _function_nodes(tree):
        if _uses_stats_var(func):
            _harvest_stats_calls(func, facts_for(func), summary)
        _harvest_pool_submits(func, facts_for, summary)
        _harvest_ownership(func, facts_for, summary, logical)
    _harvest_module_pool_submits(tree, summary)
    return summary


# -- symbols ----------------------------------------------------------
def _harvest_symbols(tree: ast.Module, summary: FileSummary) -> None:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.defs[node.name] = {
                "kind": "func",
                "line": node.lineno,
                "accepts_stats": _accepts_stats(node),
            }
        elif isinstance(node, ast.ClassDef):
            init = next(
                (
                    sub
                    for sub in node.body
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and sub.name == "__init__"
                ),
                None,
            )
            accepts = _accepts_stats(init) if init is not None else _dataclass_has_stats(node)
            summary.defs[node.name] = {
                "kind": "class",
                "line": node.lineno,
                "accepts_stats": accepts,
            }
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    summary.defs[target.id] = {
                        "kind": "lambda",
                        "line": node.lineno,
                        "accepts_stats": False,
                    }
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    summary.constants[target.id] = node.value.value

    module = summary.module or ""
    package_parts = module.split(".") if module else []
    if not summary.is_package and package_parts:
        package_parts = package_parts[:-1]
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                summary.imports[(alias.asname or alias.name).split(".")[0]] = {
                    "module": alias.name,
                    "name": None,
                    "line": node.lineno,
                }
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = (node.module or "").split(".")
            else:
                base = list(package_parts)
                for _ in range(node.level - 1):
                    base = base[:-1] if base else base
                if node.module:
                    base = base + node.module.split(".")
            target = ".".join(p for p in base if p)
            for alias in node.names:
                if alias.name == "*":
                    continue
                summary.imports[alias.asname or alias.name] = {
                    "module": target,
                    "name": alias.name,
                    "line": node.lineno,
                }

    # Closures and lambdas bound inside functions (spawn-unsafe payloads).
    local: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    local.add(inner.name)
                elif isinstance(inner, ast.Assign) and isinstance(inner.value, ast.Lambda):
                    for target in inner.targets:
                        if isinstance(target, ast.Name):
                            local.add(target.id)
    summary.local_callables = sorted(local - set(summary.defs))


def _dataclass_has_stats(node: ast.ClassDef) -> bool:
    """Dataclass field scan: an annotated ``stats`` field is a parameter."""
    has_decorator = any(
        (isinstance(d, ast.Name) and d.id == "dataclass")
        or (isinstance(d, ast.Attribute) and d.attr == "dataclass")
        or (
            isinstance(d, ast.Call)
            and isinstance(d.func, (ast.Name, ast.Attribute))
            and (getattr(d.func, "id", None) == "dataclass" or getattr(d.func, "attr", None) == "dataclass")
        )
        for d in node.decorator_list
    )
    if not has_decorator:
        return False
    return any(
        isinstance(sub, ast.AnnAssign)
        and isinstance(sub.target, ast.Name)
        and sub.target.id == "stats"
        for sub in node.body
    )


# -- counters ---------------------------------------------------------
def _harvest_counters(tree: ast.Module, summary: FileSummary) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in COUNTER_METHODS):
            continue
        if not node.args:
            continue  # e.g. Timeline.peak() — not a tracer call
        name = _resolve_name_expr(node.args[0], summary.constants)
        if name is None and not (
            isinstance(node.args[0], (ast.Constant, ast.Name, ast.BinOp, ast.JoinedStr))
        ):
            continue  # first arg is clearly not a name expression
        summary.counters.append(
            {
                "name": name,
                "kind": func.attr,
                "line": node.lineno,
                "col": node.col_offset,
                "resolved": name is not None,
            }
        )


# -- stats threading --------------------------------------------------
def _harvest_stats_calls(func, facts: _FunctionFacts, summary: FileSummary) -> None:
    params = _params_of(func)
    lattice = OptionalNoneLattice("stats")
    solution = solve_forward(facts.cfg, lattice)
    for stmt in facts.statements():
        state = solution.before(stmt)
        if state is None or state == NONE:
            continue
        for call in _calls_at(stmt):
            label = _callee_label(call.func)
            if label is None:
                continue
            forwards = any(
                _mentions_name(arg, "stats") for arg in call.args
            ) or any(
                kw.value is not None and _mentions_name(kw.value, "stats")
                for kw in call.keywords
            )
            star_kwargs = any(kw.arg is None for kw in call.keywords)
            if forwards or star_kwargs:
                continue
            summary.stats_calls.append(
                {
                    "func": func.name,
                    "callee": label,
                    "line": call.lineno,
                    "col": call.col_offset,
                    "state": state,
                }
            )
    del params


# -- pool submissions -------------------------------------------------
def _pool_like(node: ast.AST) -> bool:
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Call):
        return _pool_like(node.func)
    if name is None:
        return False
    lowered = name.lower()
    return "pool" in lowered or "executor" in lowered


def _classify_payload(node: ast.AST, summary: FileSummary) -> Dict:
    if isinstance(node, ast.Lambda):
        return {"kind": "lambda"}
    if isinstance(node, ast.Name):
        if node.id in summary.local_callables:
            return {"kind": "local", "name": node.id}
        if node.id in summary.defs:
            return {"kind": "module-def", "name": node.id}
        if node.id in summary.imports:
            return {"kind": "import", "name": node.id}
        return {"kind": "unknown", "name": node.id}
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name):
            receiver = node.value.id
            imp = summary.imports.get(receiver)
            if imp is not None and imp["name"] is None:
                return {
                    "kind": "module-attr",
                    "alias": receiver,
                    "attr": node.attr,
                }
            return {"kind": "bound-method", "receiver": receiver, "attr": node.attr}
        return {"kind": "bound-method", "receiver": "<expression>", "attr": node.attr}
    return {"kind": "other"}


def _constructor_names(value: ast.AST) -> List[str]:
    """Class names instantiated by a list/generator task expression."""
    out = []
    elts: List[ast.AST] = []
    if isinstance(value, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
        elts = [value.elt]
    elif isinstance(value, (ast.List, ast.Tuple)):
        elts = list(value.elts)
    for elt in elts:
        if isinstance(elt, ast.Call) and isinstance(elt.func, ast.Name):
            out.append(elt.func.id)
    return out


def _harvest_pool_submits(func, facts_for, summary: FileSummary) -> None:
    facts: Optional[_FunctionFacts] = None
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if not (isinstance(callee, ast.Attribute) and callee.attr in POOL_DISPATCH):
            continue
        if not _pool_like(callee.value) or not node.args:
            continue
        payload = _classify_payload(node.args[0], summary)
        ctors: List[Dict] = []
        if facts is None:
            facts = facts_for(func)
        for arg in node.args[1:]:
            names: List[str] = list(_constructor_names(arg))
            if isinstance(arg, ast.Name):
                defs = facts.definitions(node, arg.id)
                for _, value in defs or []:
                    if value is not None:
                        names.extend(_constructor_names(value))
            for ctor in names:
                ctors.append(_classify_payload(ast.Name(id=ctor), summary))
        summary.pool_submits.append(
            {
                "line": node.lineno,
                "col": node.col_offset,
                "method": callee.attr,
                "payload": payload,
                "task_ctors": ctors,
            }
        )


def _harvest_module_pool_submits(tree: ast.Module, summary: FileSummary) -> None:
    """Pool submits at module level (rare, but keep the net closed)."""
    seen = {(s["line"], s["col"]) for s in summary.pool_submits}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if not (isinstance(callee, ast.Attribute) and callee.attr in POOL_DISPATCH):
            continue
        if not _pool_like(callee.value) or not node.args:
            continue
        if (node.lineno, node.col_offset) in seen:
            continue
        summary.pool_submits.append(
            {
                "line": node.lineno,
                "col": node.col_offset,
                "method": callee.attr,
                "payload": _classify_payload(node.args[0], summary),
                "task_ctors": [],
            }
        )


# -- ownership --------------------------------------------------------
#: Constructors whose row payloads feed the exactly-once concatenation.
OUTCOME_SINKS = {
    "ShardOutcome": ("rows",),
    "BatchShardOutcome": ("rows_per_query",),
}

#: Functions that *produce* shard-owned emissions returned to a merger.
PRODUCER_FUNCTIONS = ("_join_shard",)


def _harvest_ownership(func, facts_for, summary: FileSummary, logical: str) -> None:
    sinks: List[Tuple[ast.AST, ast.AST, str]] = []  # (value, anchor, label)
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            fields = OUTCOME_SINKS.get(node.func.id)
            if fields:
                for kw in node.keywords:
                    if kw.arg in fields:
                        sinks.append(
                            (kw.value, node, f"{node.func.id}({kw.arg}=...)")
                        )
    if func.name in PRODUCER_FUNCTIONS:
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
                sinks.append(
                    (node.value, node, f"return value of {func.name}()")
                )
    if not sinks and "parallel/merge.py" not in logical:
        return

    facts = facts_for(func)
    guard = solve_forward(facts.cfg, _OwnershipGuard())
    for value, anchor, label in sinks:
        if not _value_passes_ownership(facts, guard, value, anchor):
            summary.ownership.append(
                {
                    "line": anchor.lineno,
                    "col": anchor.col_offset,
                    "detail": (
                        f"{label} in {func.name}(): a shard-result value "
                        "reaches the exactly-once merge without passing the "
                        "right-endpoint ownership filter on every path"
                    ),
                }
            )

    if logical.endswith("parallel/merge.py"):
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "extend"
                and node.args
            ):
                continue
            arg = node.args[0]
            ok = (
                isinstance(arg, ast.Attribute) and arg.attr == "rows"
            ) or (
                isinstance(arg, ast.Subscript)
                and isinstance(arg.value, ast.Attribute)
                and arg.value.attr == "rows_per_query"
            ) or _is_filtered_expr(arg)
            if not ok:
                summary.ownership.append(
                    {
                        "line": node.lineno,
                        "col": node.col_offset,
                        "detail": (
                            "merge concatenation consumes something other "
                            "than the ownership-filtered shard rows "
                            "(.rows / .rows_per_query[i])"
                        ),
                    }
                )


# ----------------------------------------------------------------------
# The project model
# ----------------------------------------------------------------------
class ProjectModel:
    """Summaries + cross-file name resolution for the flow rules."""

    def __init__(
        self,
        summaries: Dict[str, FileSummary],
        design_text: Optional[str] = None,
        design_path: str = "DESIGN.md",
    ) -> None:
        self.summaries = summaries
        self.design_text = design_text
        self.design_path = design_path
        self.by_module: Dict[str, FileSummary] = {}
        for summary in summaries.values():
            if summary.module:
                self.by_module[summary.module] = summary

    # ------------------------------------------------------------------
    def files(self) -> Sequence[FileSummary]:
        return [self.summaries[k] for k in sorted(self.summaries)]

    def resolve(
        self, module: str, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[Tuple[str, Dict]]:
        """Chase ``module.name`` through defs and import re-exports.

        Returns ``(defining_module, def_record)`` for names that land on
        a module-level definition inside the project, or ``None`` for
        external/unresolvable names.
        """
        if _seen is None:
            _seen = set()
        if (module, name) in _seen:
            return None
        _seen.add((module, name))
        summary = self.by_module.get(module)
        if summary is None:
            return None
        record = summary.defs.get(name)
        if record is not None:
            return module, record
        imported = summary.imports.get(name)
        if imported is not None:
            if imported["name"] is None:
                return None  # a module object, not a definition
            return self.resolve(imported["module"], imported["name"], _seen)
        return None

    def resolve_local(
        self, summary: FileSummary, label: str
    ) -> Optional[Tuple[str, Dict]]:
        """Resolve a ``name`` or ``alias.attr`` callee label from a file."""
        if "." in label:
            alias, attr = label.split(".", 1)
            imp = summary.imports.get(alias)
            if imp is None or imp["name"] is not None:
                return None
            return self.resolve(imp["module"], attr)
        record = summary.defs.get(label)
        if record is not None and summary.module:
            return summary.module, record
        imp = summary.imports.get(label)
        if imp is not None and imp["name"] is not None:
            return self.resolve(imp["module"], imp["name"])
        return None
