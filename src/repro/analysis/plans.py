"""Static verification of GHDs, attribute trees and planner outputs.

The paper's complexity guarantees are conditional on structure:

* Theorem 9/12 need the GHD to *be* a GHD — every query edge covered by
  some bag, and the bag tree satisfying the running-intersection
  property (Definition 7);
* Theorem 6 needs the attribute tree to respect the hierarchical order
  (``E_x ⊆ E_y`` along every root-to-leaf path, relations appearing as
  complete root paths);
* the planner's reported ``exponent`` must equal the Theorem 12 bound
  ``min(fhtw + 1, hhtw)`` or the EXPLAIN output lies about the paper's
  prediction.

``check_*`` functions return a list of human-readable issue strings
(empty = structurally sound); ``verify_*`` wrappers raise
:class:`PlanVerificationError` listing every issue at once.
:func:`repro.core.planner.plan` calls :func:`verify_plan` when the
``REPRO_VERIFY_PLANS`` environment variable is truthy (or ``verify=True``
is passed), and the Figure 6 tests verify every pinned decomposition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..core.errors import PlanError

if TYPE_CHECKING:  # pragma: no cover - import-time cycle avoidance
    from ..core.classification import AttributeTree
    from ..core.planner import Plan
    from ..nontemporal.ghd import GHD


class PlanVerificationError(PlanError):
    """A plan/decomposition failed static structural verification."""


def _raise(kind: str, issues: List[str]) -> None:
    detail = "\n".join(f"  - {issue}" for issue in issues)
    raise PlanVerificationError(
        f"{kind} failed static verification ({len(issues)} issue(s)):\n{detail}"
    )


# ----------------------------------------------------------------------
# GHDs (Definition 7)
# ----------------------------------------------------------------------
def check_ghd(ghd: "GHD") -> List[str]:
    """Structural issues of a GHD: coverage, tree shape, running intersection."""
    from ..core.hypergraph import verify_join_tree

    issues: List[str] = []
    hg = ghd.query
    bag_names = set(ghd.bags)

    if not ghd.bags:
        return ["GHD has no bags"]

    for bag, lam in ghd.bags.items():
        if not lam:
            issues.append(f"bag {bag!r} is empty")
        if len(set(lam)) != len(lam):
            issues.append(f"bag {bag!r} repeats attributes: {lam}")
        unknown = [a for a in lam if a not in set(hg.attrs)]
        if unknown:
            issues.append(f"bag {bag!r} labels unknown attributes {unknown}")

    # Edge coverage: every query edge inside some bag (Definition 7(i)).
    for name in hg.edge_names:
        eattrs = set(hg.edge(name))
        if not any(eattrs <= set(lam) for lam in ghd.bags.values()):
            issues.append(f"edge {name!r} ({sorted(eattrs)}) is covered by no bag")

    # Parent map shape.
    if set(ghd.parent) != bag_names:
        issues.append(
            f"parent map keys {sorted(ghd.parent)} != bags {sorted(bag_names)}"
        )
    else:
        for bag, par in ghd.parent.items():
            if par is not None and par not in bag_names:
                issues.append(f"bag {bag!r} has unknown parent {par!r}")
        # Running intersection (Definition 7(ii)) via the existing checker.
        if not verify_join_tree(ghd.bag_hypergraph(), ghd.parent):
            issues.append(
                "bag tree violates the running-intersection property "
                "(some attribute's bags are not connected)"
            )

    # Home groups: every edge homed exactly once, inside a covering bag.
    homed: List[str] = []
    for bag, edges in ghd.groups.items():
        if bag not in bag_names:
            issues.append(f"group for unknown bag {bag!r}")
            continue
        lam = set(ghd.bags[bag])
        for name in edges:
            homed.append(name)
            if name not in set(hg.edge_names):
                issues.append(f"group of bag {bag!r} homes unknown edge {name!r}")
            elif not set(hg.edge(name)) <= lam:
                issues.append(
                    f"edge {name!r} homed at bag {bag!r} but not covered by it"
                )
    if sorted(homed) != sorted(hg.edge_names):
        issues.append(
            f"home groups must partition the edge set: homed {sorted(homed)}, "
            f"edges {sorted(hg.edge_names)}"
        )

    return issues


def verify_ghd(ghd: "GHD") -> "GHD":
    """Raise :class:`PlanVerificationError` unless ``ghd`` is structurally sound."""
    issues = check_ghd(ghd)
    if issues:
        _raise(f"GHD {ghd.pretty()}", issues)
    return ghd


# ----------------------------------------------------------------------
# Attribute trees (Section 3.2 / Figure 5)
# ----------------------------------------------------------------------
def check_attribute_tree(tree: "AttributeTree") -> List[str]:
    """Structural issues of an attribute tree: order, paths, relation leaves."""
    issues: List[str] = []
    hg = tree.hypergraph
    nodes = tree.nodes

    roots = [n for n in nodes if n.parent is None]
    if len(roots) != 1:
        issues.append(f"expected exactly one root, found {len(roots)}")

    for node in nodes:
        # Parent/children symmetry.
        if node.parent is not None:
            parent = nodes[node.parent]
            if node.node_id not in parent.children:
                issues.append(
                    f"node {node.node_id} not listed among parent "
                    f"{parent.node_id}'s children"
                )
            # V_u layout: attribute nodes extend V_parent by their own
            # attribute; relation leaves repeat V_parent.
            if node.attr is not None:
                if node.path_attrs != parent.path_attrs + (node.attr,):
                    issues.append(
                        f"node {node.node_id} path {node.path_attrs} is not "
                        f"parent path {parent.path_attrs} + ({node.attr!r},)"
                    )
            elif node.path_attrs != parent.path_attrs:
                issues.append(
                    f"relation leaf {node.node_id} path {node.path_attrs} "
                    f"differs from parent path {parent.path_attrs}"
                )
        for child in node.children:
            if not (0 <= child < len(nodes)) or nodes[child].parent != node.node_id:
                issues.append(
                    f"child link {node.node_id} -> {child} has no matching parent link"
                )

        # Hierarchical order: E_x ⊆ E_y for attribute child x of attribute
        # parent y (the containment Figure 5's construction sorts by).
        if node.attr is not None and node.parent is not None:
            parent = nodes[node.parent]
            if parent.attr is not None:
                ex = hg.edges_of(node.attr)
                ey = hg.edges_of(parent.attr)
                if not set(ex) <= set(ey):
                    issues.append(
                        f"hierarchical order violated: E_{node.attr} = "
                        f"{sorted(ex)} is not contained in E_{parent.attr} "
                        f"= {sorted(ey)}"
                    )

    # Every relation is a root-to-leaf path: its leaf's V equals its edge.
    for name in hg.edge_names:
        leaf_id = tree.leaf_of_relation.get(name)
        if leaf_id is None:
            issues.append(f"relation {name!r} has no leaf in the tree")
            continue
        leaf = nodes[leaf_id]
        if leaf.relation != name:
            issues.append(
                f"leaf {leaf_id} registered for {name!r} carries relation "
                f"{leaf.relation!r}"
            )
        if set(leaf.path_attrs) != set(hg.edge(name)):
            issues.append(
                f"relation {name!r}: leaf path {leaf.path_attrs} != edge "
                f"attributes {hg.edge(name)}"
            )
        if leaf.children:
            issues.append(f"relation leaf {leaf_id} ({name!r}) has children")

    return issues


def verify_attribute_tree(tree: "AttributeTree") -> "AttributeTree":
    """Raise :class:`PlanVerificationError` unless ``tree`` is sound."""
    issues = check_attribute_tree(tree)
    if issues:
        _raise(f"attribute tree of {tree.hypergraph!r}", issues)
    return tree


# ----------------------------------------------------------------------
# Planner outputs (Figure 7 / Theorem 12)
# ----------------------------------------------------------------------
def check_plan(plan: "Plan") -> List[str]:
    """Width-accounting and applicability issues of a planner decision."""
    from ..core.classification import QueryClass, classify
    from ..nontemporal.ghd import fhtw, find_guarded_partition, hhtw

    issues: List[str] = []
    hg = plan.query.hypergraph

    qclass = classify(hg)
    if qclass is not plan.query_class:
        issues.append(
            f"plan records class {plan.query_class.value!r} but the query "
            f"classifies as {qclass.value!r}"
        )

    f = fhtw(hg)
    h = hhtw(hg)
    if plan.optimal:
        if plan.fhtw != f:
            issues.append(f"plan records fhtw={plan.fhtw:g}, recomputed {f:g}")
        if plan.hhtw != h:
            issues.append(f"plan records hhtw={plan.hhtw:g}, recomputed {h:g}")
    else:
        # A budget-truncated search reports best-found *upper bounds*:
        # they must still dominate the true widths and be achieved by
        # the witnesses (checked below), but need not equal the optimum.
        if plan.fhtw < f:
            issues.append(
                f"non-optimal plan claims fhtw={plan.fhtw:g} below the "
                f"true width {f:g} (not an upper bound)"
            )
        if plan.hhtw < h:
            issues.append(
                f"non-optimal plan claims hhtw={plan.hhtw:g} below the "
                f"true width {h:g} (not an upper bound)"
            )
    if f > h:
        issues.append(f"fhtw={f:g} exceeds hhtw={h:g} (restricted search)")
    if plan.fhtw > plan.hhtw:
        issues.append(
            f"recorded fhtw={plan.fhtw:g} exceeds recorded hhtw={plan.hhtw:g}"
        )

    # The searched decompositions themselves: structurally sound GHDs
    # achieving exactly the widths the plan reports.
    if plan.fhtw_witness is not None:
        witness_issues = check_ghd(plan.fhtw_witness)
        issues.extend(f"fhtw witness: {issue}" for issue in witness_issues)
        if not witness_issues and plan.fhtw_witness.width() != plan.fhtw:
            issues.append(
                f"fhtw witness has width {plan.fhtw_witness.width():g}, "
                f"plan records {plan.fhtw:g}"
            )
    if plan.hhtw_witness is not None:
        witness_issues = check_ghd(plan.hhtw_witness)
        issues.extend(f"hhtw witness: {issue}" for issue in witness_issues)
        if not witness_issues:
            if not plan.hhtw_witness.is_hierarchical():
                issues.append("hhtw witness is not a hierarchical GHD")
            if plan.hhtw_witness.width() != plan.hhtw:
                issues.append(
                    f"hhtw witness has width {plan.hhtw_witness.width():g}, "
                    f"plan records {plan.hhtw:g}"
                )

    # Theorem 12 accounting: the reported exponent must be the bound the
    # chosen strategy family actually guarantees, computed from the
    # widths the plan recorded (identical to the recomputed ones for
    # optimal plans; internally consistent upper bounds otherwise).
    expected = min(plan.fhtw + 1.0, plan.hhtw)
    if qclass in (QueryClass.HIERARCHICAL, QueryClass.R_HIERARCHICAL):
        expected = 1.0
    elif qclass is QueryClass.ACYCLIC:
        # fhtw = 1 for acyclic queries; Corollary 10's N^2 dominates hhtw
        # when a merged hierarchical GHD is wider.
        expected = min(plan.fhtw + 1.0, max(plan.hhtw, 2.0))
    if plan.exponent != expected:
        issues.append(
            f"exponent {plan.exponent:g} != min(fhtw+1, hhtw) accounting "
            f"({expected:g} for class {qclass.value!r}, fhtw={plan.fhtw:g}, "
            f"hhtw={plan.hhtw:g})"
        )

    guarded = find_guarded_partition(hg) is not None
    if plan.guarded != guarded:
        issues.append(
            f"plan says guarded={plan.guarded} but find_guarded_partition "
            f"says {guarded}"
        )

    known = {
        "timefirst", "timefirst-cm", "hybrid", "hybrid-interval",
        "baseline", "joinfirst", "naive",
    }
    for name in [plan.algorithm, *plan.alternatives]:
        if name not in known:
            issues.append(f"unknown algorithm {name!r} in plan")
    if plan.algorithm in plan.alternatives:
        issues.append(f"primary algorithm {plan.algorithm!r} repeated in alternatives")
    if plan.algorithm == "hybrid-interval" and not guarded:
        issues.append("hybrid-interval chosen without a guarded partition")
    if plan.algorithm == "timefirst-cm" and qclass not in (
        QueryClass.HIERARCHICAL, QueryClass.R_HIERARCHICAL
    ):
        issues.append("timefirst-cm chosen for a non-(r-)hierarchical query")

    return issues


def verify_plan(plan: "Plan") -> "Plan":
    """Raise :class:`PlanVerificationError` unless ``plan`` is consistent."""
    issues = check_plan(plan)
    if issues:
        _raise(f"plan for {plan.query!r}", issues)
    return plan
