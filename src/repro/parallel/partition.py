"""Time-domain partitioning: endpoint-balanced windows + ownership rule.

The parallel engine splits the global timeline into ``p`` contiguous
windows and runs the *unmodified* serial algorithm on each window's
sub-database. Two functions of the cut points make that correct:

* **Assignment** (boundary replication): a tuple is shipped to every
  shard whose window its valid interval overlaps, so each shard sees a
  self-contained sub-instance. Piatov et al. use the same replication
  for domain-partitioned interval joins.
* **Ownership** (exactly-once emission): shard ``i`` *owns* the
  half-open time range ``[c_i, c_{i+1})`` (the first shard's range is
  open at ``-inf``, the last one's closed at ``+inf``), and a join
  result belongs to the shard owning the **right endpoint of its
  intersection interval** — the instant at which TIMEFIRST's sweep would
  finalize it. Every constituent tuple of a result contains that instant
  inside its own interval, hence is assigned to the owning shard; and
  the ownership ranges partition the time axis, so the global result is
  the plain concatenation of per-shard outputs. No deduplication ever
  runs.

Cut points are **endpoint-balanced**: they are drawn from the quantiles
of the sorted multiset of all ``2N`` interval endpoints, not from an
even division of the time span. A sweep's work is proportional to the
events (endpoints) it processes, so balancing endpoints balances work
even under heavy temporal skew.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..core.errors import QueryError
from ..core.interval import Interval, Number
from ..core.relation import TemporalRelation

_NEG_INF = float("-inf")
_POS_INF = float("inf")

Database = Mapping[str, TemporalRelation]


@dataclass(frozen=True)
class TimePartition:
    """``p`` contiguous time windows described by ``p - 1`` interior cuts.

    ``cuts`` must be strictly increasing and finite; ``p = len(cuts) + 1``.
    Shard ``i`` owns the half-open range ``[cuts[i-1], cuts[i])`` with the
    conventions ``cuts[-1] = -inf`` (open) and ``cuts[p-1] = +inf``
    (closed: ``+inf`` itself belongs to the last shard).
    """

    cuts: Tuple[Number, ...]

    def __post_init__(self) -> None:
        for i, c in enumerate(self.cuts):
            if c != c or c in (_NEG_INF, _POS_INF):
                raise QueryError(f"partition cut {c!r} must be finite")
            if i and not self.cuts[i - 1] < c:
                raise QueryError(
                    f"partition cuts must be strictly increasing, got {self.cuts}"
                )

    @property
    def n_shards(self) -> int:
        return len(self.cuts) + 1

    def window(self, shard: int) -> Interval:
        """Closed time window of ``shard`` (for display and telemetry)."""
        lo = self.cuts[shard - 1] if shard > 0 else _NEG_INF
        hi = self.cuts[shard] if shard < len(self.cuts) else _POS_INF
        return Interval(lo, hi)

    def owner(self, t: Number) -> int:
        """The unique shard owning instant ``t`` (exactly-once rule).

        Monotone in ``t``; a cut point belongs to the shard *starting*
        there, so the ownership ranges tile the whole extended time axis.
        """
        return bisect.bisect_right(self.cuts, t)

    def shard_range(self, interval: Interval) -> Tuple[int, int]:
        """Inclusive shard index range ``interval`` must be assigned to.

        A shard needs a tuple exactly when some result it *owns* could
        involve the tuple — i.e. when the tuple's interval meets the
        shard's owned range. Because a result's right endpoint always
        lies inside every constituent interval, that is precisely the
        shards from ``owner(lo)`` through ``owner(hi)``; anything wider
        would be useless replication, anything narrower loses results.
        """
        return self.owner(interval.lo), self.owner(interval.hi)


def collect_endpoints(database: Database) -> List[Number]:
    """Sorted multiset of all finite interval endpoints in ``database``."""
    out: List[Number] = []
    for rel in database.values():
        for t in rel.endpoints():
            if _NEG_INF < t < _POS_INF:
                out.append(t)
    out.sort()
    return out


def partition_timeline(database: Database, shards: int) -> TimePartition:
    """Endpoint-balanced partition of ``database``'s timeline into ``shards``.

    Cut candidates are the ``j/p`` quantiles of the sorted endpoint
    multiset. Duplicate or infinite candidates are dropped, so heavily
    repeated timestamps (or an all-``always()`` database) yield fewer
    effective shards than requested — possibly just one. The caller
    reads the effective count off the returned partition.
    """
    if shards < 1:
        raise QueryError(f"shard count must be >= 1, got {shards}")
    if shards == 1:
        return TimePartition(())
    endpoints = collect_endpoints(database)
    if not endpoints:
        return TimePartition(())
    cuts: List[Number] = []
    n = len(endpoints)
    for j in range(1, shards):
        candidate = endpoints[min(n - 1, (j * n) // shards)]
        if not cuts or candidate > cuts[-1]:
            cuts.append(candidate)
    # A cut at or below the global minimum endpoint would leave shard 0
    # owning nothing; harmless, but dropping it keeps shards non-trivial.
    lo = endpoints[0]
    cuts = [c for c in cuts if c > lo]
    return TimePartition(tuple(cuts))


def shard_databases(
    database: Database, partition: TimePartition
) -> List[Dict[str, TemporalRelation]]:
    """Materialize each shard's sub-database by boundary replication.

    Every relation appears in every shard (possibly empty) so each
    sub-database still validates against the query schema. Distinctness
    is not re-checked: shard rows are a subset of already-validated rows.
    """
    p = partition.n_shards
    buckets: List[Dict[str, List]] = [
        {name: [] for name in database} for _ in range(p)
    ]
    for name, rel in database.items():
        for row in rel.rows:
            first, last = partition.shard_range(row[1])
            for shard in range(first, last + 1):
                buckets[shard][name].append(row)
    out: List[Dict[str, TemporalRelation]] = []
    for shard in range(p):
        out.append(
            {
                name: _from_rows(database[name], rows)
                for name, rows in buckets[shard].items()
            }
        )
    return out


def _from_rows(template: TemporalRelation, rows: Sequence) -> TemporalRelation:
    """A relation with ``template``'s schema over pre-validated ``rows``."""
    rel = TemporalRelation(template.name, template.attrs, check_distinct=False)
    rel._rows = list(rows)
    return rel


def replication_factor(
    database: Database, shard_dbs: Sequence[Database]
) -> Tuple[int, int]:
    """``(input_tuples, replicated_tuples)`` for the telemetry counters.

    ``replicated_tuples`` counts the extra copies created by boundary
    replication: total tuples across shards minus the input size.
    """
    total_input = sum(len(rel) for rel in database.values())
    total_assigned = sum(
        len(rel) for db in shard_dbs for rel in db.values()
    )
    return total_input, total_assigned - total_input
