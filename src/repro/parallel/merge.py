"""Exactly-once merge: concatenate shard outputs, aggregate telemetry.

Because the ownership rule guarantees each join result is emitted by
exactly one shard, the merge is a plain concatenation in shard order —
no hashing, no deduplication, no interval coalescing. The only other
work here is folding per-shard :class:`~repro.obs.ExecutionStats` into
the caller's stats object and adding the parallel-layer counters
documented in ``DESIGN.md``:

* ``parallel.shards`` / ``parallel.workers`` — effective shard count and
  the worker processes used;
* ``parallel.replicated`` — extra tuple copies created by boundary
  replication (total assigned minus input size);
* ``parallel.shard_input`` / ``parallel.shard_results`` — per-shard size
  distributions (``.count`` / ``.total`` / ``.max``);
* ``parallel.skew_pct_peak`` — slowest shard's wall time as an integer
  percentage of the mean shard wall time (100 = perfectly balanced;
  ``_peak`` suffix so re-merging keeps the max);
* timers ``phase.parallel.shard00…`` and ``phase.parallel.workers`` —
  per-shard and summed worker wall-clock.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.query import JoinQuery
from ..core.result import JoinResultSet
from ..obs import ExecutionStats
from .worker import ShardOutcome


def merge_outcomes(
    query: JoinQuery,
    outcomes: Sequence[ShardOutcome],
    stats: Optional[ExecutionStats] = None,
    workers: int = 1,
    replicated: int = 0,
) -> JoinResultSet:
    """Reassemble the global :class:`JoinResultSet` from shard outcomes.

    ``outcomes`` may arrive in any order (process pools preserve order,
    but nothing here depends on it); rows are concatenated in shard
    order so repeated runs produce identical row sequences.
    """
    ordered = sorted(outcomes, key=lambda o: o.shard)
    result = JoinResultSet(query.attrs)
    for outcome in ordered:
        result.extend(outcome.rows)

    if stats is not None:
        for outcome in ordered:
            if outcome.stats is not None:
                stats.merge(outcome.stats)
        stats.incr("parallel.shards", len(ordered))
        stats.incr("parallel.workers", workers)
        stats.incr("parallel.replicated", replicated)
        times = []
        for outcome in ordered:
            stats.observe("parallel.shard_input", outcome.input_size)
            stats.observe("parallel.shard_results", outcome.owned_results)
            stats.add_time(
                f"phase.parallel.shard{outcome.shard:02d}", outcome.seconds
            )
            times.append(outcome.seconds)
        stats.add_time("phase.parallel.workers", sum(times))
        mean = sum(times) / len(times) if times else 0.0
        skew = round(100 * max(times) / mean) if mean > 0 else 100
        stats.peak("parallel.skew_pct_peak", skew)
    return result
