"""Parallel execution engine: time-domain sharded sweeps, exactly-once merge.

Runs any registered evaluation strategy across ``p`` contiguous time
shards and reassembles the global result without deduplication. See
``DESIGN.md`` ("Parallel execution") for the ownership rule and the
boundary-replication argument; the entry point users normally reach is
``temporal_join(..., workers=p)`` in :mod:`repro.algorithms.registry`.
"""

from .executor import MODES, parallel_temporal_join
from .merge import merge_outcomes
from .partition import (
    TimePartition,
    collect_endpoints,
    partition_timeline,
    replication_factor,
    shard_databases,
)
from .worker import ShardOutcome, ShardTask, run_shard

__all__ = [
    "MODES",
    "ShardOutcome",
    "ShardTask",
    "TimePartition",
    "collect_endpoints",
    "merge_outcomes",
    "parallel_temporal_join",
    "partition_timeline",
    "replication_factor",
    "run_shard",
    "shard_databases",
]
