"""The parallel execution engine: shard, fan out, merge exactly once.

:func:`parallel_temporal_join` runs *any* registered algorithm across
``workers`` time shards:

1. :func:`~repro.parallel.partition.partition_timeline` places
   endpoint-balanced cuts;
2. :func:`~repro.parallel.partition.shard_databases` replicates each
   tuple into every shard its interval overlaps;
3. each shard evaluates the unmodified serial algorithm
   (:func:`~repro.parallel.worker.run_shard`) and keeps only the results
   it owns under the exactly-once rule;
4. :func:`~repro.parallel.merge.merge_outcomes` concatenates.

Execution modes
---------------
``"process"`` (default) uses a ``multiprocessing`` pool with the
``spawn`` start method — safe under every interpreter configuration, at
the cost of one interpreter start per worker; each shard task is pickled
exactly once. ``"inline"`` runs the identical shard tasks sequentially
in the calling process: same partitioning, same ownership filter, same
merge, no processes — the debugging and testing mode. ``workers=1``
always runs inline (a single shard needs no pool).
"""

from __future__ import annotations

import multiprocessing
from typing import Mapping, Optional, Sequence

from ..core.errors import QueryError
from ..core.interval import Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..obs import ExecutionStats
from .merge import merge_outcomes
from .partition import (
    TimePartition,
    partition_timeline,
    replication_factor,
    shard_databases,
)
from .worker import (
    BatchShardOutcome,
    BatchShardTask,
    ShardOutcome,
    ShardTask,
    run_batch_shard,
    run_shard,
)

#: Execution modes accepted by :func:`parallel_temporal_join`.
MODES = ("process", "inline")


def parallel_temporal_join(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    algorithm: str = "auto",
    workers: int = 2,
    mode: str = "process",
    cuts: Optional[Sequence[Number]] = None,
    stats: Optional[ExecutionStats] = None,
    engine: str = "auto",
    prepared=None,
    **kwargs,
) -> JoinResultSet:
    """Evaluate a τ-durable temporal join across ``workers`` time shards.

    Parameters mirror :func:`repro.algorithms.registry.temporal_join`
    plus the parallel knobs:

    workers:
        Requested shard/worker count. The effective shard count may be
        lower when the endpoint distribution does not admit that many
        distinct cuts; ``stats`` reports it as ``parallel.shards``.
    mode:
        ``"process"`` (spawn-based pool) or ``"inline"`` (sequential
        in-process execution of the same shard tasks).
    cuts:
        Explicit interior cut points overriding the endpoint-balanced
        partitioner — for experiments and boundary tests.
    engine:
        As in :func:`~repro.algorithms.registry.temporal_join`. On the
        kernel path the parent interns the (shrunk, reduced) instance
        once and ships each worker pre-sorted interned columns instead
        of object rows; workers only sweep, de-intern and filter.
    prepared:
        Optional :class:`~repro.kernels.prepared.PreparedDatabase`
        matching ``database``. On the kernel path shard columns are
        sliced from the prepared τ-view instead of re-interning; the
        caller (``temporal_join``) has already validated the artifact.

    Returns the same :class:`JoinResultSet` (up to row order) as the
    serial ``temporal_join`` with the same arguments; the merge path
    performs no deduplication, relying on the ownership rule.
    """
    from ..algorithms.registry import (
        _check_engine,
        _check_tau,
        _engine_decision,
        _ensure_loaded,
        _resolve_auto,
    )

    _ensure_loaded()
    _check_tau(tau)
    _check_engine(engine)
    query.validate(database)
    if mode not in MODES:
        raise QueryError(f"unknown parallel mode {mode!r}; expected {MODES}")
    if workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers}")
    if algorithm == "auto":
        if prepared is not None:
            choice = prepared.cached_plan(query, stats=stats)
            algorithm, _, kwargs = _resolve_auto(query, kwargs, choice=choice)
        else:
            algorithm, _, kwargs = _resolve_auto(query, kwargs)

    if cuts is not None:
        partition = TimePartition(tuple(cuts))
    else:
        partition = partition_timeline(database, workers)

    used_engine, fallback_reason = _engine_decision(algorithm, engine, kwargs)
    if fallback_reason is not None and stats is not None:
        stats.note("kernel.fallback_reason", fallback_reason)
    if used_engine == "kernel":
        tasks, replicated = _kernel_shard_tasks(
            query, database, tau, algorithm, partition, stats,
            prepared=prepared,
        )
    else:
        shard_dbs = shard_databases(database, partition)
        _, replicated = replication_factor(database, shard_dbs)
        tasks = [
            ShardTask(
                shard=i,
                query=query,
                database=shard_db,
                tau=tau,
                algorithm=algorithm,
                cuts=partition.cuts,
                kwargs=dict(kwargs),
                collect_stats=stats is not None,
            )
            for i, shard_db in enumerate(shard_dbs)
        ]

    n_procs = min(workers, len(tasks))
    if mode == "process" and n_procs > 1:
        outcomes = _run_pool(tasks, n_procs)
    else:
        outcomes = [run_shard(task) for task in tasks]

    return merge_outcomes(
        query,
        outcomes,
        stats=stats,
        workers=n_procs,
        replicated=replicated,
    )


def _kernel_shard_tasks(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number,
    algorithm: str,
    partition: TimePartition,
    stats: Optional[ExecutionStats],
    prepared=None,
):
    """Build kernel-engine shard tasks: interned columns, no object rows.

    The instance is prepared (validated, τ/2-shrunk, reduced) and
    interned *once* in the parent — or, with a
    :class:`~repro.kernels.prepared.PreparedDatabase`, not at all: the
    artifact's cached τ-view restricted to the query's relations stands
    in for the cold ``prepare_run`` + ``build_columns`` pair (queries
    needing the per-query r-hierarchical reduction take the cold branch
    regardless). Each shard receives the column subset of every row
    whose expanded (original) interval overlaps its window, re-ranked
    locally with its own pre-sorted event codes. Assignment by expanded
    intervals is what makes ownership exact: a result's endpoint owner
    sees all of the result's constituent rows (their expanded intervals
    each contain the expanded result endpoint).
    """
    from ..kernels import build_columns, prepare_run, shard_row_ids
    from ..kernels.prepared import _record_reuse, needs_reduction

    if prepared is not None and not needs_reduction(query):
        run_query = query
        columns = prepared.columns_for(query, tau, stats=stats)
        _record_reuse(prepared, columns, stats)
    else:
        run_query, run_db = prepare_run(query, database, tau, stats=stats)
        columns = build_columns(run_db, stats=stats)
    assignments = shard_row_ids(columns, partition.cuts, tau)
    replicated = sum(len(rids) for rids in assignments) - columns.n_rows
    tasks = [
        ShardTask(
            shard=i,
            query=run_query,
            database=None,
            tau=tau,
            algorithm=algorithm,
            cuts=partition.cuts,
            kwargs={},
            collect_stats=stats is not None,
            columns=columns.subset(rids),
        )
        for i, rids in enumerate(assignments)
    ]
    return tasks, replicated


def _run_pool(tasks: Sequence[ShardTask], n_procs: int) -> Sequence[ShardOutcome]:
    """Fan shard tasks out to a spawn-based process pool.

    ``spawn`` starts each worker from a fresh interpreter, so
    :func:`run_shard` must stay importable as
    ``repro.parallel.worker.run_shard`` — the test suite's process-mode
    smoke test guards that. Worker exceptions re-raise here unchanged.
    """
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=n_procs) as pool:
        return pool.map(run_shard, tasks, chunksize=1)


def run_batch_tasks(
    tasks: Sequence[BatchShardTask], n_procs: int, mode: str
) -> Sequence[BatchShardOutcome]:
    """Execute a prepared batch's shard tasks (pool or inline).

    The batch counterpart of the fan-out inside
    :func:`parallel_temporal_join`: same spawn-based pool, same inline
    debugging mode, one task per shard — but each task carries the whole
    query fleet, so the shard columns cross the process boundary once
    per *batch*. Called by :func:`repro.kernels.prepared.run_batch`.
    """
    if mode == "process" and n_procs > 1:
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(processes=n_procs) as pool:
            return pool.map(run_batch_shard, tasks, chunksize=1)
    return [run_batch_shard(task) for task in tasks]
