"""Shard worker: runs one serial algorithm on one time shard.

:func:`run_shard` is the function shipped to worker processes. It is a
plain module-level function over picklable dataclasses, so it works
under every ``multiprocessing`` start method including ``spawn`` (where
the child interpreter imports this module fresh and receives the task by
pickle — nothing may depend on inherited parent state).

The worker evaluates the *unmodified* registered algorithm on its shard
sub-database, then applies the ownership filter: only results whose
intersection interval ends inside the shard's owned range survive (see
:mod:`repro.parallel.partition`). Everything else is a boundary
duplicate that some neighbouring shard owns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.interval import Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import ResultRow
from ..obs import ExecutionStats
from .partition import TimePartition


@dataclass
class ShardTask:
    """Everything one worker needs, pickled exactly once per shard.

    Two payload shapes: the object engine ships a shard sub-database
    (``database``); the kernel engine ships pre-interned columns
    (``columns`` — see :meth:`repro.kernels.KernelColumns.subset`) and
    leaves ``database`` ``None``, so no object rows cross the process
    boundary. On the kernel path ``query`` is the *run* query (already
    validated / τ-shrunk / r-hierarchically reduced by the parent) and
    the worker only sweeps, de-interns and expands.
    """

    shard: int
    query: JoinQuery
    database: Optional[Dict[str, TemporalRelation]]
    tau: Number
    algorithm: str
    cuts: Tuple[Number, ...]
    kwargs: Dict = field(default_factory=dict)
    collect_stats: bool = False
    columns: Optional[object] = None  # repro.kernels.KernelColumns


@dataclass
class BatchShardTask:
    """One shard's share of a whole prepared-batch fan-out.

    The kernel-only sibling of :class:`ShardTask` used by
    :func:`repro.kernels.prepared.run_batch`: one column subset
    (``columns`` — the shard's slice of the prepared τ-view, all
    relations) plus *every* kernel-eligible run query of the batch. The
    worker restricts the shard columns per distinct relation subset
    locally and sweeps each query in turn, so the shard payload crosses
    the process boundary exactly once per batch instead of once per
    query — and, as always on the kernel path, contains no object rows.
    """

    shard: int
    queries: List[JoinQuery]
    tau: Number
    cuts: Tuple[Number, ...]
    columns: object  # repro.kernels.KernelColumns
    collect_stats: bool = False


@dataclass
class BatchShardOutcome:
    """One shard's owned rows for every query of a batch."""

    shard: int
    rows_per_query: List[List[ResultRow]]
    input_size: int
    seconds: float
    stats: Optional[ExecutionStats] = None


@dataclass
class ShardOutcome:
    """One shard's owned results plus its execution profile."""

    shard: int
    rows: List[ResultRow]
    input_size: int
    raw_results: int
    owned_results: int
    seconds: float
    stats: Optional[ExecutionStats] = None


def run_shard(task: ShardTask) -> ShardOutcome:
    """Evaluate ``task`` and keep only the results this shard owns.

    The algorithm is resolved from the registry *inside* the worker —
    functions are looked up by name rather than pickled, which keeps the
    payload small and spawn-safe. Exceptions propagate; the pool in
    :mod:`repro.parallel.executor` re-raises them in the parent.
    """
    partition = TimePartition(task.cuts)
    stats = ExecutionStats() if task.collect_stats else None

    start = time.perf_counter()
    if task.columns is not None:
        result = _run_kernel_shard(task, stats)
        input_size = task.columns.n_rows
    else:
        from ..algorithms.registry import get_algorithm

        fn = get_algorithm(task.algorithm)
        kwargs = dict(task.kwargs)
        if stats is not None:
            kwargs["stats"] = stats
        result = fn(task.query, task.database, tau=task.tau, **kwargs)
        input_size = sum(len(rel) for rel in task.database.values())
    seconds = time.perf_counter() - start

    shard = task.shard
    owner = partition.owner
    owned = [row for row in result.rows if owner(row[1].hi) == shard]
    return ShardOutcome(
        shard=shard,
        rows=owned,
        input_size=input_size,
        raw_results=len(result),
        owned_results=len(owned),
        seconds=seconds,
        stats=stats,
    )


def run_batch_shard(task: BatchShardTask) -> BatchShardOutcome:
    """Sweep every batch query over one shard's prepared columns.

    Mirrors the kernel arm of :func:`run_shard` query by query — make
    state, sweep, de-intern, expand, ownership-filter — but reuses the
    shard's column payload (and its per-relation-subset restrictions)
    across the whole batch. Spawn-safe for the same reasons as
    :func:`run_shard`: module-level function, picklable dataclasses.
    """
    from ..kernels import deintern_results, kernel_sweep, make_state

    partition = TimePartition(task.cuts)
    stats = ExecutionStats() if task.collect_stats else None
    shard = task.shard
    owner = partition.owner
    half = task.tau / 2 if task.tau else 0
    all_relations = set(task.columns.relations)

    start = time.perf_counter()
    restricted: Dict[Tuple[str, ...], object] = {}
    rows_per_query: List[List[ResultRow]] = []
    for query in task.queries:
        keep = tuple(sorted(query.edge_names))
        columns = restricted.get(keep)
        if columns is None:
            columns = (
                task.columns
                if set(keep) == all_relations
                else task.columns.restrict(keep)
            )
            restricted[keep] = columns
        state = make_state(query, columns, stats=stats)
        result = kernel_sweep(query, columns, state, stats=stats)
        result = deintern_results(columns.domains, result)
        result = result.expand_intervals(half)
        rows_per_query.append(
            [row for row in result.rows if owner(row[1].hi) == shard]
        )
    return BatchShardOutcome(
        shard=shard,
        rows_per_query=rows_per_query,
        input_size=task.columns.n_rows,
        seconds=time.perf_counter() - start,
        stats=stats,
    )


def _run_kernel_shard(task: ShardTask, stats: Optional[ExecutionStats]):
    """Sweep one shard of pre-interned columns (kernel engine).

    The parent already validated, τ/2-shrunk and (if needed) reduced
    the instance before interning, so the worker's job is exactly the
    remaining pipeline: sweep the shard's pre-sorted event codes,
    de-intern via the shared domain tables, and expand result intervals
    back by τ/2. The ownership filter in :func:`run_shard` then sees
    the same expanded intervals the object path produces.
    """
    from ..kernels import deintern_results, kernel_sweep, make_state

    columns = task.columns
    state = make_state(task.query, columns, stats=stats)
    result = kernel_sweep(task.query, columns, state, stats=stats)
    result = deintern_results(columns.domains, result)
    return result.expand_intervals(task.tau / 2 if task.tau else 0)
