"""Shard worker: runs one serial algorithm on one time shard.

:func:`run_shard` is the function shipped to worker processes. It is a
plain module-level function over picklable dataclasses, so it works
under every ``multiprocessing`` start method including ``spawn`` (where
the child interpreter imports this module fresh and receives the task by
pickle — nothing may depend on inherited parent state).

The worker evaluates the *unmodified* registered algorithm on its shard
sub-database, then applies the ownership filter: only results whose
intersection interval ends inside the shard's owned range survive (see
:mod:`repro.parallel.partition`). Everything else is a boundary
duplicate that some neighbouring shard owns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.interval import Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import ResultRow
from ..obs import ExecutionStats
from .partition import TimePartition


@dataclass
class ShardTask:
    """Everything one worker needs, pickled exactly once per shard."""

    shard: int
    query: JoinQuery
    database: Dict[str, TemporalRelation]
    tau: Number
    algorithm: str
    cuts: Tuple[Number, ...]
    kwargs: Dict = field(default_factory=dict)
    collect_stats: bool = False


@dataclass
class ShardOutcome:
    """One shard's owned results plus its execution profile."""

    shard: int
    rows: List[ResultRow]
    input_size: int
    raw_results: int
    owned_results: int
    seconds: float
    stats: Optional[ExecutionStats] = None


def run_shard(task: ShardTask) -> ShardOutcome:
    """Evaluate ``task`` and keep only the results this shard owns.

    The algorithm is resolved from the registry *inside* the worker —
    functions are looked up by name rather than pickled, which keeps the
    payload small and spawn-safe. Exceptions propagate; the pool in
    :mod:`repro.parallel.executor` re-raises them in the parent.
    """
    from ..algorithms.registry import get_algorithm

    fn = get_algorithm(task.algorithm)
    partition = TimePartition(task.cuts)
    stats = ExecutionStats() if task.collect_stats else None
    kwargs = dict(task.kwargs)
    if stats is not None:
        kwargs["stats"] = stats

    start = time.perf_counter()
    result = fn(task.query, task.database, tau=task.tau, **kwargs)
    seconds = time.perf_counter() - start

    shard = task.shard
    owner = partition.owner
    owned = [row for row in result.rows if owner(row[1].hi) == shard]
    return ShardOutcome(
        shard=shard,
        rows=owned,
        input_size=sum(len(rel) for rel in task.database.values()),
        raw_results=len(result),
        owned_results=len(owned),
        seconds=seconds,
        stats=stats,
    )
