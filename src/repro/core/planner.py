"""The Figure 7 guideline: choosing an evaluation strategy per query.

Given only the query structure (never the data — that is future work the
paper's Section 6.3 sketches), the guideline walks a decision tree:

* hierarchical (or r-hierarchical after reduction) → TIMEFIRST with the
  attribute-tree structure (Theorem 6, optimal);
* acyclic but non-hierarchical → TIMEFIRST with the GHD state
  (Corollary 10); when hhtw = 2 the hierarchical-GHD HYBRID is listed as
  competitive, and when a guarded partition exists HYBRID-INTERVAL is
  preferred (Section 4.2's O(N^1.5 + K) for line joins);
* cyclic → HYBRID (Theorem 12); TIMEFIRST-GHD is additionally listed when
  fhtw + 1 ≤ hhtw, and the guarded simplification applies when available.

:func:`plan` returns a :class:`Plan` carrying the primary choice, the
competitive alternatives, the computed widths, and an ``explain()``
rendering used by the Table 1 bench.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .classification import QueryClass, classify
from .query import JoinQuery


@dataclass
class Plan:
    """Outcome of the Figure 7 decision procedure for one query."""

    query: JoinQuery
    query_class: QueryClass
    algorithm: str
    alternatives: List[str]
    fhtw: float
    hhtw: float
    exponent: float  # Theorem 12 bound min(fhtw + 1, hhtw) (1 if hierarchical)
    guarded: bool
    notes: List[str] = field(default_factory=list)
    #: Default execution substrate for the chosen algorithm under
    #: ``engine="auto"``: ``"kernel"`` (columnar interned sweep,
    #: :mod:`repro.kernels`) when the algorithm has a kernel fast path,
    #: ``"object"`` otherwise. Same asymptotics either way — the engine
    #: is a constant-factor choice, never a plan-shape one.
    engine: str = "object"

    def explain(self) -> str:
        """Human-readable account of the decision, à la Table 1."""
        lines = [
            f"query      : {self.query!r}",
            f"class      : {self.query_class.value}",
            f"fhtw       : {self.fhtw:g}   hhtw: {self.hhtw:g}",
            f"exponent   : N^{self.exponent:g} (+ K)",
            f"algorithm  : {self.algorithm}",
            f"engine     : {self.engine}"
            + (" (interned columnar sweep)" if self.engine == "kernel" else ""),
        ]
        if self.alternatives:
            lines.append(f"also viable: {', '.join(self.alternatives)}")
        if self.guarded:
            lines.append("guarded    : yes (HybridGuarded / interval join applies)")
        for note in self.notes:
            lines.append(f"note       : {note}")
        return "\n".join(lines)


def plan_signature(query: JoinQuery) -> Tuple:
    """Hashable shape key of ``query`` for plan caching.

    Two queries share a signature iff they have the same hypergraph —
    same edge names bound to the same attribute tuples — and the same
    output attribute order. Everything :func:`plan` looks at
    (classification, widths, guardedness) is a function of the
    hypergraph alone, so equal signatures guarantee equal plans; the
    attribute order is included because a cached plan is reused together
    with query-level artifacts (result layouts) that do depend on it.
    The plan cache in :class:`repro.kernels.prepared.PreparedDatabase`
    keys on this plus the requested algorithm name.
    """
    edges = tuple(
        (name, tuple(query.edge(name))) for name in sorted(query.edge_names)
    )
    return edges, tuple(query.attrs)


def hypergraph_signature(query: JoinQuery) -> Tuple:
    """Like :func:`plan_signature` but ignoring output attribute order.

    Queries with equal hypergraph signatures have identical result
    *sets* up to a column permutation — the batch executor uses this to
    evaluate each distinct hypergraph once and project the shared rows
    into every requested attribute order.
    """
    return plan_signature(query)[0]


def plan(query: JoinQuery, verify: Optional[bool] = None) -> Plan:
    """Run the Figure 7 guideline on ``query`` (O(1) data complexity).

    With ``verify=True`` — or the ``REPRO_VERIFY_PLANS`` environment
    variable set to a non-empty value — the returned plan is passed
    through the static verifier (:func:`repro.analysis.plans.verify_plan`)
    before being handed back: width accounting, class consistency and
    algorithm applicability are re-derived and any mismatch raises
    :class:`~repro.analysis.plans.PlanVerificationError`. The debug flag
    costs one extra width search per call, so it defaults to off.
    """
    from ..nontemporal.ghd import fhtw, find_guarded_partition, hhtw

    qclass = classify(query.hypergraph)
    hg = query.hypergraph
    f = fhtw(hg)
    h = hhtw(hg)
    guarded = find_guarded_partition(hg) is not None
    notes: List[str] = []

    if qclass in (QueryClass.HIERARCHICAL, QueryClass.R_HIERARCHICAL):
        algorithm = "timefirst"
        alternatives: List[str] = []
        exponent = 1.0
        if qclass is QueryClass.R_HIERARCHICAL:
            notes.append(
                "r-hierarchical: linear-time instance reduction first "
                "(footnote 2), then the hierarchical sweep"
            )
        notes.append("O(N log N + K), optimal under 3SUM (Theorem 6 / 14)")
    elif qclass is QueryClass.ACYCLIC:
        algorithm = "timefirst"
        alternatives = []
        exponent = 2.0
        if guarded:
            algorithm = "hybrid-interval"
            alternatives.append("timefirst")
            notes.append(
                "guarded partition exists: interval-join residuals "
                "(O(N^1.5 + K) for line joins)"
            )
        if h == 2:
            alternatives.append("hybrid")
            notes.append("hhtw = 2: hierarchical-GHD HYBRID is competitive")
    else:  # CYCLIC
        algorithm = "hybrid"
        alternatives = []
        exponent = min(f + 1, h)
        if f + 1 <= h:
            alternatives.append("timefirst")
            notes.append("fhtw + 1 <= hhtw: TIMEFIRST over the GHD also matches")
        if guarded:
            alternatives.append("hybrid-interval")
            notes.append("guarded simplification applies to the GHD")

    from ..kernels.engine import supports_kernel

    result = Plan(
        query=query,
        query_class=qclass,
        algorithm=algorithm,
        alternatives=alternatives,
        fhtw=f,
        hhtw=h,
        exponent=exponent,
        guarded=guarded,
        notes=notes,
        engine="kernel" if supports_kernel(algorithm) else "object",
    )
    if verify is None:
        verify = bool(os.environ.get("REPRO_VERIFY_PLANS"))
    if verify:
        from ..analysis.plans import verify_plan

        verify_plan(result)
    return result
