"""The Figure 7 guideline: choosing an evaluation strategy per query.

Given only the query structure (never the data — that is future work the
paper's Section 6.3 sketches), the guideline walks a decision tree:

* hierarchical (or r-hierarchical after reduction) → TIMEFIRST with the
  attribute-tree structure (Theorem 6, optimal);
* acyclic but non-hierarchical → TIMEFIRST with the GHD state
  (Corollary 10); when hhtw = 2 the hierarchical-GHD HYBRID is listed as
  competitive, and when a guarded partition exists HYBRID-INTERVAL is
  preferred (Section 4.2's O(N^1.5 + K) for line joins);
* cyclic → HYBRID (Theorem 12); TIMEFIRST-GHD is additionally listed when
  fhtw + 1 ≤ hhtw, and the guarded simplification applies when available.

:func:`plan` returns a :class:`Plan` carrying the primary choice, the
competitive alternatives, the computed widths, and an ``explain()``
rendering used by the Table 1 bench.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..obs import ExecutionStats
from .classification import QueryClass, classify
from .errors import QueryError
from .plancache import PlanCache, cache_key, decode_entry, encode_entry, key_digest
from .query import JoinQuery


@dataclass
class Plan:
    """Outcome of the Figure 7 decision procedure for one query."""

    query: JoinQuery
    query_class: QueryClass
    algorithm: str
    alternatives: List[str]
    fhtw: float
    hhtw: float
    exponent: float  # Theorem 12 bound min(fhtw + 1, hhtw) (1 if hierarchical)
    guarded: bool
    notes: List[str] = field(default_factory=list)
    #: Default execution substrate for the chosen algorithm under
    #: ``engine="auto"``: ``"kernel"`` (columnar interned sweep,
    #: :mod:`repro.kernels`) when the algorithm has a kernel fast path,
    #: ``"object"`` otherwise. Same asymptotics either way — the engine
    #: is a constant-factor choice, never a plan-shape one.
    engine: str = "object"
    #: False when a planner budget expired before the decomposition
    #: search was exhausted: ``fhtw``/``hhtw`` are then the best-found
    #: *upper bounds* (still achieved by the witnesses below).
    optimal: bool = True
    #: The winning decompositions (``repro.nontemporal.ghd.GHD``), kept
    #: so the static verifier can re-check every searched GHD without
    #: re-running the search. Untyped to avoid an import cycle.
    fhtw_witness: Optional[object] = field(default=None, repr=False)
    hhtw_witness: Optional[object] = field(default=None, repr=False)

    def explain(self) -> str:
        """Human-readable account of the decision, à la Table 1."""
        lines = [
            f"query      : {self.query!r}",
            f"class      : {self.query_class.value}",
            f"fhtw       : {self.fhtw:g}   hhtw: {self.hhtw:g}",
            f"exponent   : N^{self.exponent:g} (+ K)",
            f"algorithm  : {self.algorithm}",
            f"engine     : {self.engine}"
            + (" (interned columnar sweep)" if self.engine == "kernel" else ""),
        ]
        if not self.optimal:
            lines.append(
                "optimal    : no (search budget exhausted; widths are "
                "best-found upper bounds)"
            )
        if self.alternatives:
            lines.append(f"also viable: {', '.join(self.alternatives)}")
        if self.guarded:
            lines.append("guarded    : yes (HybridGuarded / interval join applies)")
        for note in self.notes:
            lines.append(f"note       : {note}")
        return "\n".join(lines)


def plan_signature(query: JoinQuery) -> Tuple:
    """Hashable shape key of ``query`` for plan caching.

    Two queries share a signature iff they have the same hypergraph —
    same edge names bound to the same attribute tuples — and the same
    output attribute order. Everything :func:`plan` looks at
    (classification, widths, guardedness) is a function of the
    hypergraph alone, so equal signatures guarantee equal plans; the
    attribute order is included because a cached plan is reused together
    with query-level artifacts (result layouts) that do depend on it.
    The plan cache in :class:`repro.kernels.prepared.PreparedDatabase`
    keys on this plus the requested algorithm name.
    """
    edges = tuple(
        (name, tuple(query.edge(name))) for name in sorted(query.edge_names)
    )
    return edges, tuple(query.attrs)


def hypergraph_signature(query: JoinQuery) -> Tuple:
    """Like :func:`plan_signature` but ignoring output attribute order.

    Queries with equal hypergraph signatures have identical result
    *sets* up to a column permutation — the batch executor uses this to
    evaluate each distinct hypergraph once and project the shared rows
    into every requested attribute order.
    """
    return plan_signature(query)[0]


#: One :class:`PlanCache` instance per resolved directory, so repeated
#: ``plan()`` calls under one process share a single load of the file.
_CACHES: Dict[str, PlanCache] = {}


def _resolve_cache(
    cache: Union[None, str, PlanCache],
) -> Optional[PlanCache]:
    """``cache=`` / ``REPRO_PLAN_CACHE`` to a live :class:`PlanCache`."""
    if cache is None:
        cache = os.environ.get("REPRO_PLAN_CACHE") or None
    if cache is None:
        return None
    if isinstance(cache, PlanCache):
        return cache
    path = os.path.abspath(cache)
    obj = _CACHES.get(path)
    if obj is None:
        obj = PlanCache(path)
        _CACHES[path] = obj
    return obj


def _resolve_budget(budget: Optional[int]) -> Optional[int]:
    """``budget=`` / ``REPRO_PLANNER_BUDGET`` to a node count (or None)."""
    if budget is not None:
        return budget
    raw = os.environ.get("REPRO_PLANNER_BUDGET")
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise QueryError(
            f"REPRO_PLANNER_BUDGET must be an integer node count, got {raw!r}"
        )


def plan(
    query: JoinQuery,
    verify: Optional[bool] = None,
    *,
    search: Optional[str] = None,
    budget: Optional[int] = None,
    cache: Union[None, str, PlanCache] = None,
    stats: Optional[ExecutionStats] = None,
) -> Plan:
    """Run the Figure 7 guideline on ``query`` (O(1) data complexity).

    The width searches run through
    :func:`repro.nontemporal.search.min_width_ghd`; ``search`` selects
    the engine (``"exact"`` branch-and-bound by default, overridable via
    ``REPRO_PLAN_SEARCH``) and ``budget`` caps its node count
    (``REPRO_PLANNER_BUDGET``) — an exhausted budget degrades to the
    best-found decomposition with ``Plan.optimal = False`` and a
    ``planner.budget_exhausted`` note rather than failing.

    ``cache`` (a directory path, a :class:`PlanCache`, or the
    ``REPRO_PLAN_CACHE`` environment variable) adds a persistent lookup
    in front of the search, keyed by the renaming-invariant canonical
    hypergraph signature: a warm hit rebuilds the cached winning GHDs
    and performs **zero** search nodes. Only proven-optimal results are
    persisted. ``stats`` records ``planner.search_nodes``,
    ``planner.lb_prunes``, ``planner.cache_hits`` /
    ``planner.cache_misses`` (cache configured only) and the
    ``phase.planner.search`` timer.

    With ``verify=True`` — or the ``REPRO_VERIFY_PLANS`` environment
    variable set to a non-empty value — the returned plan is passed
    through the static verifier (:func:`repro.analysis.plans.verify_plan`)
    before being handed back: width accounting, class consistency and
    algorithm applicability are re-derived and any mismatch raises
    :class:`~repro.analysis.plans.PlanVerificationError`. The debug flag
    costs one extra width search per call, so it defaults to off.
    """
    from ..nontemporal.ghd import find_guarded_partition
    from ..nontemporal.search import min_width_ghd

    if search is None:
        search = os.environ.get("REPRO_PLAN_SEARCH") or "exact"
    budget = _resolve_budget(budget)
    cache_obj = _resolve_cache(cache)

    hg = query.hypergraph
    qclass = classify(hg)
    guarded = find_guarded_partition(hg) is not None
    notes: List[str] = []

    widths = None
    digest = None
    if cache_obj is not None:
        digest = key_digest(cache_key(hg))
        entry = cache_obj.lookup(digest)
        if entry is not None:
            widths = decode_entry(entry, hg)
            if widths is not None and stats is not None:
                stats.incr("planner.cache_hits")
    optimal = True
    store_entry = False
    if widths is None:
        if cache_obj is not None and stats is not None:
            stats.incr("planner.cache_misses")
        if stats is not None:
            with stats.timer("phase.planner.search"):
                fres = min_width_ghd(
                    hg, hierarchical=False, search=search, budget=budget
                )
                hres = min_width_ghd(
                    hg, hierarchical=True, search=search, budget=budget
                )
            stats.incr("planner.search_nodes", fres.nodes + hres.nodes)
            stats.incr("planner.lb_prunes", fres.lb_prunes + hres.lb_prunes)
        else:
            fres = min_width_ghd(
                hg, hierarchical=False, search=search, budget=budget
            )
            hres = min_width_ghd(
                hg, hierarchical=True, search=search, budget=budget
            )
        widths = (fres.width, fres.ghd, hres.width, hres.ghd)
        optimal = fres.optimal and hres.optimal
        if not optimal:
            reason = fres.reason or hres.reason or "search budget exhausted"
            notes.append(
                f"decomposition search incomplete ({reason}); widths are "
                "best-found upper bounds"
            )
            if stats is not None:
                stats.note("planner.budget_exhausted", reason)
        store_entry = cache_obj is not None and optimal
    f, fghd, h, hghd = widths

    if qclass in (QueryClass.HIERARCHICAL, QueryClass.R_HIERARCHICAL):
        algorithm = "timefirst"
        alternatives: List[str] = []
        exponent = 1.0
        if qclass is QueryClass.R_HIERARCHICAL:
            notes.append(
                "r-hierarchical: linear-time instance reduction first "
                "(footnote 2), then the hierarchical sweep"
            )
        notes.append("O(N log N + K), optimal under 3SUM (Theorem 6 / 14)")
    elif qclass is QueryClass.ACYCLIC:
        algorithm = "timefirst"
        alternatives = []
        exponent = 2.0
        if guarded:
            algorithm = "hybrid-interval"
            alternatives.append("timefirst")
            notes.append(
                "guarded partition exists: interval-join residuals "
                "(O(N^1.5 + K) for line joins)"
            )
        if h == 2:
            alternatives.append("hybrid")
            notes.append("hhtw = 2: hierarchical-GHD HYBRID is competitive")
    else:  # CYCLIC
        algorithm = "hybrid"
        alternatives = []
        exponent = min(f + 1, h)
        if f + 1 <= h:
            alternatives.append("timefirst")
            notes.append("fhtw + 1 <= hhtw: TIMEFIRST over the GHD also matches")
        if guarded:
            alternatives.append("hybrid-interval")
            notes.append("guarded simplification applies to the GHD")

    from ..kernels.engine import supports_kernel

    result = Plan(
        query=query,
        query_class=qclass,
        algorithm=algorithm,
        alternatives=alternatives,
        fhtw=f,
        hhtw=h,
        exponent=exponent,
        guarded=guarded,
        notes=notes,
        engine="kernel" if supports_kernel(algorithm) else "object",
        optimal=optimal,
        fhtw_witness=fghd,
        hhtw_witness=hghd,
    )
    if store_entry:
        cache_obj.store(
            digest,
            encode_entry(f, fghd, h, hghd, algorithm, qclass.value),
        )
        cache_obj.save()
    if verify is None:
        verify = bool(os.environ.get("REPRO_VERIFY_PLANS"))
    if verify:
        from ..analysis.plans import verify_plan

        verify_plan(result)
    return result
