"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while still being able to distinguish schema problems from query
problems from planning problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation or tuple violates its declared schema.

    Raised, for example, when a tuple's arity does not match the relation's
    attribute list, or when a database binds a relation whose schema differs
    from the query hyperedge it is supposed to populate.
    """


class QueryError(ReproError):
    """A join query is structurally invalid or unsupported.

    Raised for empty queries, duplicate edge names, hyperedges referring to
    undeclared attributes, or when an algorithm is invoked on a query class
    it does not support (e.g. the hierarchical sweep on a cyclic query).
    """


class PlanError(ReproError):
    """A physical plan could not be constructed or is inconsistent.

    Raised when a GHD violates coverage/connectivity, when a requested
    decomposition (e.g. a hierarchical GHD) does not exist, or when a
    guarded partition is requested for a query that has none.
    """


class IntervalError(ReproError):
    """An interval literal is malformed (e.g. lower bound above upper)."""


class InvariantError(ReproError):
    """An internal invariant the algorithms rely on was violated.

    The taxonomy's replacement for bare ``assert`` in library code:
    unlike ``assert``, the check survives ``python -O``, and callers can
    still catch :class:`ReproError` at API boundaries. Seeing this
    exception always indicates a bug in the library, never bad input.
    """
