"""Persistent on-disk plan cache: pay the decomposition search once.

The planner's only data-independent cost is the minimum-width GHD
search. This module persists its winners across processes in the style
of ``.repro-lint-cache/``: one pickle file under ``.repro-plan-cache/``
holding ``{digest: payload}`` entries, salted with the schema version
and the Python minor version so either changing invalidates everything
at once.

**Key derivation.** The cache key is the *canonical hypergraph
signature*: the multiset of per-edge attribute sets, i.e.
``tuple(sorted(tuple(sorted(edge)) for edge in query))``. Unlike
:func:`repro.core.planner.hypergraph_signature` — which keeps relation
names because the batch executor shares *result rows* through it — the
plan cache may ignore names entirely: widths and decompositions depend
only on which attribute sets appear. Renaming every relation therefore
hits the same entry (the metamorphic suite pins this). Attribute
*names* are part of the key; α-renaming attributes is a different
shape.

**Payload.** Entries store plain data only — widths, the winning
partitions as lists of canonical edge *indices*, the advisor verdict
(algorithm + class strings). GHDs are rebuilt against the live query's
hypergraph on lookup, so a cached plan can never leak object rows or
live relation references into another process (the pickle-inspection
test scans the bytes for exactly that). A corrupt or stale file is a
silent miss, never an error.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
from typing import Dict, List, Optional, Tuple

from .hypergraph import Hypergraph

#: Bump when the payload shape or the partition encoding changes.
SCHEMA_VERSION = 1

#: Default cache directory, resolved against the working directory.
DEFAULT_CACHE_DIR = ".repro-plan-cache"


def plancache_salt() -> str:
    """Digest salt covering everything besides the query shape."""
    return (
        f"schema={SCHEMA_VERSION}"
        f"|py={sys.version_info[0]}.{sys.version_info[1]}"
    )


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------
def cache_key(hg: Hypergraph) -> Tuple[Tuple[str, ...], ...]:
    """Renaming-invariant shape key: sorted per-edge attribute tuples."""
    return tuple(sorted(tuple(sorted(hg.edge(n))) for n in hg.edge_names))


def canonical_edge_names(hg: Hypergraph) -> List[str]:
    """Edge names in canonical (attr-tuple, then name) order.

    Position in this list is the edge id the cached partitions use. Two
    edges with identical attribute sets tie-break by name — which is
    *not* renaming-invariant, but such edges are interchangeable in any
    decomposition (equal bags either way), so the rebuilt GHD is valid
    regardless of which of them lands in which group.
    """
    return sorted(hg.edge_names, key=lambda n: (tuple(sorted(hg.edge(n))), n))


def key_digest(key: Tuple[Tuple[str, ...], ...]) -> str:
    """sha256 of the canonical key under the current salt."""
    return hashlib.sha256(
        (plancache_salt() + "\0" + repr(key)).encode("utf-8")
    ).hexdigest()


# ----------------------------------------------------------------------
# GHD <-> plain-data partition encoding
# ----------------------------------------------------------------------
def encode_partition(ghd) -> List[List[int]]:
    """A GHD's home groups as lists of canonical edge indices."""
    order = canonical_edge_names(ghd.query)
    index = {name: i for i, name in enumerate(order)}
    return [
        sorted(index[name] for name in ghd.groups[bag]) for bag in ghd.bags
    ]


def decode_partition(hg: Hypergraph, partition: List[List[int]]):
    """Rebuild a GHD from cached indices against a live hypergraph.

    Returns ``None`` — a cache miss — when the encoded partition does
    not describe ``hg`` (wrong arity, missing edges, or a bag
    hypergraph that fails the GYO test): stale or corrupted entries
    must degrade to a re-search, never an exception.
    """
    from ..nontemporal.ghd import ghd_from_partition

    order = canonical_edge_names(hg)
    try:
        flat = sorted(i for group in partition for i in group)
        if flat != list(range(len(order))):
            return None
        groups = [[order[i] for i in group] for group in partition]
    except (TypeError, IndexError):
        return None
    return ghd_from_partition(hg, groups)


def encode_entry(
    fhtw: float,
    fhtw_ghd,
    hhtw: float,
    hhtw_ghd,
    algorithm: str,
    query_class: str,
) -> Dict:
    """The plain-data payload stored per cache entry.

    Widths, both winning partitions, and the advisor verdict (algorithm
    and class strings, kept for inspection — the planner re-derives its
    decision from the widths on every hit, so a stale verdict can never
    steer execution).
    """
    return {
        "fhtw": float(fhtw),
        "fhtw_partition": encode_partition(fhtw_ghd),
        "hhtw": float(hhtw),
        "hhtw_partition": encode_partition(hhtw_ghd),
        "algorithm": str(algorithm),
        "query_class": str(query_class),
    }


def decode_entry(entry: Dict, hg: Hypergraph):
    """``(fhtw, fhtw_ghd, hhtw, hhtw_ghd)`` from a payload, or ``None``.

    Any malformed field — wrong types, partitions that do not rebuild
    into valid GHDs over ``hg`` — turns the entry into a miss.
    """
    try:
        f = float(entry["fhtw"])
        h = float(entry["hhtw"])
        fghd = decode_partition(hg, entry["fhtw_partition"])
        hghd = decode_partition(hg, entry["hhtw_partition"])
    except Exception:
        return None
    if fghd is None or hghd is None:
        return None
    return f, fghd, h, hghd


# ----------------------------------------------------------------------
# The persistent store
# ----------------------------------------------------------------------
class PlanCache:
    """Load-once / save-on-store cache of decomposition search winners.

    One pickle file maps key digests to plain-data payloads (see module
    docstring). Loading tolerates *any* failure silently — an absent,
    truncated, wrong-schema or wrong-salt file simply starts empty —
    because a plan cache must never be able to take the planner down.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        self.path = os.path.join(root, "plans.pkl")
        self._entries: Dict[str, Dict] = {}
        self._dirty = False
        self._load()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.path, "rb") as handle:
                data = pickle.load(handle)
        except Exception:  # corrupt/absent/unreadable: silent cold start
            return
        if not isinstance(data, dict):
            return
        if data.get("schema") != SCHEMA_VERSION:
            return
        if data.get("salt") != plancache_salt():
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def save(self) -> None:
        """Atomically persist (tmp + rename); no-op when clean."""
        if not self._dirty:
            return
        os.makedirs(self.root, exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(
                {
                    "schema": SCHEMA_VERSION,
                    "salt": plancache_salt(),
                    "entries": self._entries,
                },
                handle,
            )
        os.replace(tmp, self.path)
        self._dirty = False

    # ------------------------------------------------------------------
    def lookup(self, digest: str) -> Optional[Dict]:
        entry = self._entries.get(digest)
        if not isinstance(entry, dict):
            return None
        return entry

    def store(self, digest: str, payload: Dict) -> None:
        self._entries[digest] = payload
        self._dirty = True
