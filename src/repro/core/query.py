"""The :class:`JoinQuery` facade and the paper's named query families.

A :class:`JoinQuery` wraps a :class:`~repro.core.hypergraph.Hypergraph`
with conveniences every algorithm needs: a fixed output attribute order,
validation of a database against the query schema, and constructors for
the query families used throughout the paper (Figure 3):

* ``line(n)``   — ``Q_Ln``: R1(x1,x2) ⋈ … ⋈ Rn(xn, x(n+1))
* ``star(n)``   — ``Q_Sn``: R1(x1,y) ⋈ … ⋈ Rn(xn,y)
* ``cycle(n)``  — ``Q_Cn``: line(n-1) closed with Rn(xn, x1)
* ``triangle()``— ``Q_Δ = Q_C3``
* ``bowtie()``  — two triangles sharing one vertex (Section 6)
* ``hier()``    — the running hierarchical example ``Q_hier`` of Figure 3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .classification import QueryClass, classify, is_hierarchical, is_r_hierarchical
from .errors import QueryError, SchemaError
from .hypergraph import Hypergraph
from .relation import TemporalRelation

Database = Mapping[str, TemporalRelation]


class JoinQuery:
    """A multi-way (natural) join query ``Q = (V, E)``.

    Parameters
    ----------
    edges:
        Mapping relation name → attribute sequence.
    attr_order:
        Optional explicit output attribute order; defaults to first
        appearance across edges. Result tuples from every algorithm are
        laid out in this order, which makes cross-algorithm comparison a
        plain tuple equality.
    """

    def __init__(
        self,
        edges: Mapping[str, Sequence[str]],
        attr_order: Optional[Sequence[str]] = None,
    ) -> None:
        self.hypergraph = Hypergraph(edges)
        if attr_order is None:
            self.attrs: Tuple[str, ...] = self.hypergraph.attrs
        else:
            attr_order = tuple(attr_order)
            if sorted(attr_order) != sorted(self.hypergraph.attrs):
                raise QueryError(
                    f"attr_order {attr_order} must be a permutation of the "
                    f"query attributes {self.hypergraph.attrs}"
                )
            self.attrs = attr_order
        self._attr_pos: Dict[str, int] = {a: i for i, a in enumerate(self.attrs)}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def edge_names(self) -> List[str]:
        return self.hypergraph.edge_names

    def edge(self, name: str) -> Tuple[str, ...]:
        return self.hypergraph.edge(name)

    def attr_position(self, attr: str) -> int:
        """Index of ``attr`` in the output tuple layout."""
        try:
            return self._attr_pos[attr]
        except KeyError:
            raise QueryError(f"unknown attribute {attr!r}") from None

    def classify(self) -> QueryClass:
        return classify(self.hypergraph)

    @property
    def is_hierarchical(self) -> bool:
        return is_hierarchical(self.hypergraph)

    @property
    def is_r_hierarchical(self) -> bool:
        return is_r_hierarchical(self.hypergraph)

    @property
    def is_acyclic(self) -> bool:
        return self.hypergraph.is_acyclic()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = " ⋈ ".join(
            f"{n}({', '.join(a)})" for n, a in self.hypergraph.items()
        )
        return f"JoinQuery[{inner}]"

    # ------------------------------------------------------------------
    # Database validation
    # ------------------------------------------------------------------
    def validate(self, database: Database) -> None:
        """Raise :class:`SchemaError` unless ``database`` matches the query.

        Every hyperedge must be bound to a relation whose attribute *set*
        equals the edge's attribute set (order may differ; algorithms
        always address values by attribute name through positions).
        """
        for name in self.edge_names:
            if name not in database:
                raise SchemaError(f"database is missing relation {name!r}")
            rel = database[name]
            if set(rel.attrs) != set(self.edge(name)):
                raise SchemaError(
                    f"relation {name!r} has attributes {rel.attrs}, query "
                    f"expects {self.edge(name)}"
                )

    def input_size(self, database: Database) -> int:
        """The paper's ``N``: total number of input tuples."""
        return sum(len(database[name]) for name in self.edge_names)

    # ------------------------------------------------------------------
    # Named families (Figure 3)
    # ------------------------------------------------------------------
    @staticmethod
    def line(n: int) -> "JoinQuery":
        """``Q_Ln``: a path of ``n`` binary relations over ``n+1`` attributes."""
        if n < 1:
            raise QueryError("line join needs n >= 1 relations")
        return JoinQuery(
            {f"R{i}": (f"x{i}", f"x{i + 1}") for i in range(1, n + 1)}
        )

    @staticmethod
    def star(n: int, center: str = "y") -> "JoinQuery":
        """``Q_Sn``: ``n`` binary relations sharing the center attribute."""
        if n < 1:
            raise QueryError("star join needs n >= 1 relations")
        return JoinQuery({f"R{i}": (f"x{i}", center) for i in range(1, n + 1)})

    @staticmethod
    def cycle(n: int) -> "JoinQuery":
        """``Q_Cn``: a cycle of ``n`` binary relations over ``n`` attributes."""
        if n < 3:
            raise QueryError("cycle join needs n >= 3 relations")
        edges = {f"R{i}": (f"x{i}", f"x{i + 1}") for i in range(1, n)}
        edges[f"R{n}"] = (f"x{n}", "x1")
        return JoinQuery(edges)

    @staticmethod
    def triangle() -> "JoinQuery":
        """``Q_Δ`` = ``Q_C3``."""
        return JoinQuery.cycle(3)

    @staticmethod
    def bowtie() -> "JoinQuery":
        """Two triangles sharing vertex ``x1`` (the Flights query Q_bowtie)."""
        return JoinQuery(
            {
                "R1": ("x1", "x2"),
                "R2": ("x2", "x3"),
                "R3": ("x3", "x1"),
                "R4": ("x1", "x4"),
                "R5": ("x4", "x5"),
                "R6": ("x5", "x1"),
            }
        )

    @staticmethod
    def hier() -> "JoinQuery":
        """``Q_hier`` of Figure 3 — the running hierarchical example."""
        return JoinQuery(
            {
                "R1": ("A", "B"),
                "R2": ("A", "B", "D"),
                "R3": ("A", "B", "E"),
                "R4": ("A", "C", "F"),
                "R5": ("A", "C", "G"),
            }
        )

    @staticmethod
    def parse(text: str) -> "JoinQuery":
        """Parse the paper's notation: ``R1(x1, x2) ⋈ R2(x2, x3)``.

        Accepts ``⋈``, ``|x|``, or ``join`` (case-insensitive) as the join
        symbol; attribute lists are comma-separated inside parentheses.

        >>> JoinQuery.parse("R1(x1,x2) ⋈ R2(x2,x3)").edge_names
        ['R1', 'R2']
        """
        import re

        normalized = re.sub(r"\|x\||\bjoin\b", "⋈", text, flags=re.IGNORECASE)
        parts = [p.strip() for p in normalized.split("⋈") if p.strip()]
        if not parts:
            raise QueryError(f"cannot parse join query from {text!r}")
        edges: Dict[str, Tuple[str, ...]] = {}
        pattern = re.compile(r"^([A-Za-z_]\w*)\s*\(([^()]*)\)$")
        for part in parts:
            match = pattern.match(part)
            if not match:
                raise QueryError(
                    f"cannot parse relation {part!r}; expected Name(attr, ...)"
                )
            name = match.group(1)
            attrs = tuple(
                a.strip() for a in match.group(2).split(",") if a.strip()
            )
            if not attrs:
                raise QueryError(f"relation {name!r} has no attributes")
            if name in edges:
                raise QueryError(f"duplicate relation name {name!r}")
            edges[name] = attrs
        return JoinQuery(edges)

    @staticmethod
    def from_hypergraph(hg: Hypergraph) -> "JoinQuery":
        """Wrap an existing hypergraph without copying."""
        q = JoinQuery.__new__(JoinQuery)
        q.hypergraph = hg
        q.attrs = hg.attrs
        q._attr_pos = {a: i for i, a in enumerate(q.attrs)}
        return q


def self_join_database(
    query: JoinQuery, relation: TemporalRelation
) -> Dict[str, TemporalRelation]:
    """Bind every binary edge of ``query`` to a renamed copy of ``relation``.

    This is how the paper evaluates graph-pattern queries: three copies of
    the edge table with attributes renamed per hyperedge (Figure 2). The
    input relation must be binary; its first attribute maps to the edge's
    first attribute and likewise for the second.
    """
    if len(relation.attrs) != 2:
        raise SchemaError("self_join_database requires a binary edge relation")
    db: Dict[str, TemporalRelation] = {}
    for name in query.edge_names:
        eattrs = query.edge(name)
        if len(eattrs) != 2:
            raise QueryError(
                f"self-join binding needs binary edges; {name!r} has {eattrs}"
            )
        db[name] = TemporalRelation(name, eattrs, relation.rows, check_distinct=False)
    return db
