"""Durable joins and the paper's temporal-predicate reformulations.

Section 2.1 ("Remarks on Other Temporal Join Models") shows that a broad
class of temporal predicates reduce to the plain non-empty-intersection
model by transforming valid intervals up front:

* **τ-durable joins** — shrink every interval by τ/2; empty intervals drop
  out; the temporal join of the shrunk instance is exactly the τ-durable
  join of the original (:func:`shrink_database`). Result intervals are
  recovered by expanding back (:meth:`JoinResultSet.expand_intervals`).
* **Instant-stamped data within τ** — widen each timestamp ``t`` to
  ``[t - τ/2, t + τ/2]`` (:func:`widen_instants`).
* **Lead/lag with gap ≥ τ** — map the leading relation's intervals to
  ``[t+, +inf)`` and the trailing one's to ``(-inf, t-]``, then run a
  τ-durable join (:func:`lead_lag_transform`).
* **Relative positioning patterns** — shift each relation's intervals by
  the pattern interval's endpoints so that a common shift Δ exists iff the
  transformed intervals intersect (:func:`relative_pattern_transform`).
* **Multi-interval tuples** — explode an interval-set-valued relation into
  distinct single-interval pseudo-tuples (:func:`explode_interval_sets`)
  and re-coalesce result intervals (:func:`coalesce_results`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from .errors import QueryError
from .interval import Interval, IntervalSet, Number, intersect_all
from .relation import TemporalRelation
from .result import JoinResultSet

Database = Mapping[str, TemporalRelation]


def shrink_database(database: Database, tau: Number) -> Dict[str, TemporalRelation]:
    """Apply the τ/2 shrink to every relation (the τ-durable reduction).

    Runs in ``O(N)``; relations keep their names so the query binding is
    unchanged. With ``tau == 0`` the database is returned as-is (well,
    shallow-copied) because the shrink is the identity.
    """
    if tau < 0:
        raise QueryError(f"durability threshold must be >= 0, got {tau}")
    if tau == 0:
        return dict(database)
    half = tau / 2
    return {name: rel.shrink(half) for name, rel in database.items()}


def widen_instants(
    relation: TemporalRelation, tau: Number
) -> TemporalRelation:
    """Instant-stamped data: replace ``[t, t]`` with ``[t - τ/2, t + τ/2]``.

    After widening, a 0-durable temporal join finds tuple groups whose
    timestamps all lie within τ of each other (pairwise), matching the
    paper's first reformulation example.
    """
    half = tau / 2
    return relation.map_intervals(lambda iv: Interval(iv.lo - half, iv.hi + half))


def lead_lag_transform(
    leader: TemporalRelation, follower: TemporalRelation
) -> Tuple[TemporalRelation, TemporalRelation]:
    """Lead/lag predicate: leader ends before follower starts.

    Transform leader intervals ``[t-, t+] → [t+, +inf)`` and follower
    intervals ``→ (-inf, t-]``. A τ-durable temporal join of the
    transformed relations finds pairs where the leader leads by ≥ τ.
    """
    lead = leader.map_intervals(lambda iv: Interval(iv.hi, float("inf")))
    follow = follower.map_intervals(lambda iv: Interval(float("-inf"), iv.lo))
    return lead, follow


def relative_pattern_transform(
    database: Database, pattern: Mapping[str, Interval]
) -> Dict[str, TemporalRelation]:
    """Relative-positioning predicate (third reformulation example).

    For each relation ``e`` with pattern interval ``I_e = [p-, p+]``,
    transform every tuple interval ``[t-, t+]`` into ``[t- - p-, t+ - p+]``
    (dropped when empty, i.e. when the tuple interval is longer than the
    pattern window). A shift Δ with ``I + Δ ⊆ I_e`` exists for all relations
    simultaneously iff the transformed intervals share a common point — so
    a 0-durable temporal join on the transformed instance answers the
    pattern query. Note the transformed interval is ``{Δ : I + Δ ⊆ I_e}``
    negated; intersection over relations is the set of feasible shifts.
    """
    out: Dict[str, TemporalRelation] = {}
    for name, rel in database.items():
        if name not in pattern:
            out[name] = rel
            continue
        p = pattern[name]

        def transform(iv: Interval, p: Interval = p) -> Interval | None:
            lo = p.lo - iv.lo  # smallest feasible shift
            hi = p.hi - iv.hi  # largest feasible shift
            if lo > hi:
                return None
            return Interval(lo, hi)

        out[name] = rel.map_intervals(transform)
    return out


def explode_interval_sets(
    name: str,
    attrs: Sequence[str],
    rows: Iterable[Tuple[Sequence[object], IntervalSet]],
    episode_attr: str = "__episode__",
) -> TemporalRelation:
    """Explode multi-interval tuples into distinct single-interval rows.

    The paper's model assumes distinct tuples; a tuple valid over a *set*
    of disjoint intervals (e.g. DBLP co-authorships with publication gaps)
    is represented by one pseudo-tuple per validity episode, disambiguated
    by an extra hidden attribute. Use :func:`coalesce_results` afterwards
    to merge episodes back together in the output.
    """
    exploded = []
    for values, ivset in rows:
        for idx, interval in enumerate(ivset):
            exploded.append((tuple(values) + (idx,), interval))
    return TemporalRelation(name, tuple(attrs) + (episode_attr,), exploded)


def coalesce_results(
    results: JoinResultSet, hidden_attrs: Sequence[str]
) -> JoinResultSet:
    """Drop hidden episode attributes and coalesce intervals per tuple.

    The output associates each surviving value tuple with the *set* of
    disjoint intervals over which it holds; since :class:`JoinResultSet`
    rows are single-interval, a tuple valid over k disjoint episodes
    appears k times, each with one coalesced interval.
    """
    hidden = set(hidden_attrs)
    keep_pos = [i for i, a in enumerate(results.attrs) if a not in hidden]
    keep_attrs = [results.attrs[i] for i in keep_pos]
    grouped: Dict[Tuple[object, ...], List[Interval]] = {}
    order: List[Tuple[object, ...]] = []
    for values, interval in results:
        key = tuple(values[p] for p in keep_pos)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(interval)
    out = JoinResultSet(keep_attrs)
    for key in order:
        for interval in IntervalSet(grouped[key]):
            out.append(key, interval)
    return out


def temporal_join_multi(
    query,
    databases: Mapping[str, Iterable[Tuple[Sequence[object], IntervalSet]]],
    tau: Number = 0,
    algorithm: str = "auto",
) -> JoinResultSet:
    """Temporal join over relations whose tuples carry *interval sets*.

    The end-to-end wrapper for the paper's multi-interval model: each
    relation is given as ``(values, IntervalSet)`` rows; episodes are
    exploded into distinct pseudo-tuples, the τ-durable join runs on the
    exploded instance, and episode attributes are dropped again with the
    output intervals coalesced per value tuple. A result tuple valid over
    k disjoint episodes therefore appears k times, once per coalesced
    episode — the natural multi-interval output.
    """
    from ..algorithms.registry import temporal_join
    from .query import JoinQuery

    exploded_edges = {}
    exploded_db = {}
    hidden = []
    for name in query.edge_names:
        attrs = query.edge(name)
        episode_attr = f"__ep_{name}__"
        hidden.append(episode_attr)
        exploded_edges[name] = tuple(attrs) + (episode_attr,)
        exploded_db[name] = explode_interval_sets(
            name, attrs, databases[name], episode_attr=episode_attr
        )
    exploded_query = JoinQuery(
        exploded_edges, attr_order=tuple(query.attrs) + tuple(hidden)
    )
    raw = temporal_join(exploded_query, exploded_db, tau=tau, algorithm=algorithm)
    return coalesce_results(raw, hidden_attrs=hidden)


def durability(intervals: Iterable[Interval]) -> Number:
    """Durability of a combination of tuples: length of the intersection.

    Returns ``-inf`` when the intervals do not intersect at all, which
    compares below any τ ≥ 0.
    """
    joint = intersect_all(intervals)
    if joint is None:
        return float("-inf")
    return joint.duration
