"""Join-query hypergraphs: acyclicity, join trees, induced subqueries.

A join query is a hypergraph ``Q = (V, E)`` whose vertices are attributes
and whose named hyperedges are relations (Section 2.1 of the paper). This
module implements the structural machinery that every algorithm builds on:

* GYO ear reduction, which simultaneously decides α-acyclicity and produces
  a *join tree* (Beeri et al. [23]);
* induced sub-hypergraphs ``Q_I`` (Section 4.2);
* connectivity, attribute→edge incidence, reduction (removal of edges
  contained in other edges, used by the r-hierarchical test).

Edges are identified by *name*, not by attribute set: two distinct
relations may cover identical attribute sets (that situation only arises
in non-reduced queries, but the data model should not forbid it).
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .errors import QueryError


class Hypergraph:
    """An attribute hypergraph with named hyperedges.

    Parameters
    ----------
    edges:
        Mapping from edge (relation) name to an iterable of attribute
        names. Attribute order inside an edge is preserved for display but
        irrelevant to the semantics.
    """

    __slots__ = ("_edges", "_attrs", "_incidence")

    def __init__(self, edges: Mapping[str, Sequence[str]]) -> None:
        if not edges:
            raise QueryError("a join query needs at least one relation")
        self._edges: Dict[str, Tuple[str, ...]] = {}
        self._incidence: Dict[str, Set[str]] = {}
        for name, attrs in edges.items():
            attrs = tuple(attrs)
            if not attrs:
                raise QueryError(f"hyperedge {name!r} has no attributes")
            if len(set(attrs)) != len(attrs):
                raise QueryError(f"hyperedge {name!r} repeats attributes: {attrs}")
            self._edges[name] = attrs
            for a in attrs:
                self._incidence.setdefault(a, set()).add(name)
        # Deterministic global attribute order: first appearance.
        seen: List[str] = []
        seen_set: Set[str] = set()
        for attrs in self._edges.values():
            for a in attrs:
                if a not in seen_set:
                    seen.append(a)
                    seen_set.add(a)
        self._attrs: Tuple[str, ...] = tuple(seen)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def attrs(self) -> Tuple[str, ...]:
        """All attributes, in deterministic first-appearance order."""
        return self._attrs

    @property
    def edge_names(self) -> List[str]:
        """Edge names in declaration order."""
        return list(self._edges)

    def edge(self, name: str) -> Tuple[str, ...]:
        """Attribute tuple of edge ``name``."""
        try:
            return self._edges[name]
        except KeyError:
            raise QueryError(f"unknown relation {name!r}") from None

    def edge_set(self, name: str) -> FrozenSet[str]:
        """Attribute set of edge ``name``."""
        return frozenset(self.edge(name))

    def edges_of(self, attr: str) -> FrozenSet[str]:
        """The paper's ``E_x``: names of edges containing attribute ``attr``."""
        try:
            return frozenset(self._incidence[attr])
        except KeyError:
            raise QueryError(f"unknown attribute {attr!r}") from None

    def items(self) -> Iterable[Tuple[str, Tuple[str, ...]]]:
        return self._edges.items()

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, name: str) -> bool:
        return name in self._edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{n}({', '.join(a)})" for n, a in self._edges.items())
        return f"Hypergraph({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return {n: frozenset(a) for n, a in self._edges.items()} == {
            n: frozenset(a) for n, a in other._edges.items()
        }

    def __hash__(self) -> int:
        return hash(frozenset((n, frozenset(a)) for n, a in self._edges.items()))

    # ------------------------------------------------------------------
    # Structure: connectivity, reduction, induced subqueries
    # ------------------------------------------------------------------
    def connected_components(self) -> List[List[str]]:
        """Partition edge names into connected components (shared attrs)."""
        remaining = set(self._edges)
        components: List[List[str]] = []
        while remaining:
            start = min(remaining)  # deterministic
            stack = [start]
            comp: Set[str] = set()
            while stack:
                e = stack.pop()
                if e in comp:
                    continue
                comp.add(e)
                for a in self._edges[e]:
                    for other in self._incidence[a]:
                        if other in remaining and other not in comp:
                            stack.append(other)
            remaining -= comp
            components.append(sorted(comp))
        return components

    def is_connected(self) -> bool:
        return len(self.connected_components()) == 1

    def reduce(self) -> Tuple["Hypergraph", Dict[str, str]]:
        """Remove edges contained in other edges (the paper's *reduced* join).

        Returns the reduced hypergraph together with an ``absorbed`` map
        from each removed edge name to the surviving edge that contains it.
        Ties are broken deterministically (larger edge first, then name) so
        repeated calls agree. The temporal semantics of absorption — the
        semijoin with interval intersection of footnote 2 — is implemented
        in :func:`repro.core.classification.reduce_instance`.
        """
        names = sorted(
            self._edges, key=lambda n: (-len(self._edges[n]), n)
        )
        kept: List[str] = []
        absorbed: Dict[str, str] = {}
        for name in names:
            attrs = set(self._edges[name])
            host = None
            for other in kept:
                if attrs <= set(self._edges[other]):
                    host = other
                    break
            if host is None:
                kept.append(name)
            else:
                absorbed[name] = host
        reduced = Hypergraph({n: self._edges[n] for n in self._edges if n in set(kept)})
        return reduced, absorbed

    def induced(self, attrs: Iterable[str]) -> "Hypergraph":
        """The sub-hypergraph ``Q_I`` induced by attribute set ``attrs``.

        Follows Section 4.2: keep every edge intersecting ``I``, restricted
        to ``I``. Edges whose restriction is empty are dropped.
        """
        keep = set(attrs)
        edges: Dict[str, Tuple[str, ...]] = {}
        for name, eattrs in self._edges.items():
            restricted = tuple(a for a in eattrs if a in keep)
            if restricted:
                edges[name] = restricted
        if not edges:
            raise QueryError(f"no edge intersects attribute set {sorted(keep)}")
        return Hypergraph(edges)

    # ------------------------------------------------------------------
    # Acyclicity via GYO ear reduction
    # ------------------------------------------------------------------
    def gyo_join_tree(self) -> Optional[Dict[str, Optional[str]]]:
        """GYO ear reduction; returns a join tree or ``None`` if cyclic.

        The join tree is returned as a parent map over edge names; exactly
        one edge per connected component has parent ``None``. An edge ``e``
        is an *ear* if some other edge ``w`` contains every attribute of
        ``e`` that is shared with any third edge; removing ears until none
        remain empties the edge set iff the hypergraph is α-acyclic, and
        attaching each ear to its witness yields a join tree.
        """
        alive: Dict[str, Set[str]] = {n: set(a) for n, a in self._edges.items()}
        parent: Dict[str, Optional[str]] = {}
        # Repeat until no removal applies.
        changed = True
        while changed and len(alive) > 1:
            changed = False
            for name in sorted(alive):
                attrs = alive[name]
                # Attributes of `name` shared with some other alive edge.
                shared = {
                    a
                    for a in attrs
                    if any(a in alive[o] for o in alive if o != name)
                }
                witness = None
                for other in sorted(alive):
                    if other == name:
                        continue
                    if shared <= alive[other]:
                        witness = other
                        break
                if witness is not None:
                    parent[name] = witness
                    del alive[name]
                    changed = True
                    break
        if len(alive) > 1:
            return None
        # The last edge of each component is its root.
        for name in alive:
            parent[name] = None
        # Ears may have been attached to edges that were themselves later
        # removed; that is fine — the witness was alive at removal time and
        # the parent pointers still form a tree over all edges. But if the
        # query had several components, only one root survived the loop;
        # re-rooting per component keeps the forest consistent.
        return self._repair_forest(parent)

    def _repair_forest(
        self, parent: Dict[str, Optional[str]]
    ) -> Dict[str, Optional[str]]:
        """Ensure every edge reaches a root (guards against stale witnesses)."""
        for name in self._edges:
            if name not in parent:
                parent[name] = None
        return parent

    def is_acyclic(self) -> bool:
        """α-acyclicity test (Beeri et al.)."""
        return self.gyo_join_tree() is not None

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def rename_attrs(self, mapping: Mapping[str, str]) -> "Hypergraph":
        """Rename attributes throughout the hypergraph."""
        return Hypergraph(
            {
                n: tuple(mapping.get(a, a) for a in attrs)
                for n, attrs in self._edges.items()
            }
        )


def join_tree_children(parent: Mapping[str, Optional[str]]) -> Dict[str, List[str]]:
    """Invert a parent map into sorted child lists (roots under key ``""``)."""
    children: Dict[str, List[str]] = {}
    for node, par in parent.items():
        children.setdefault("" if par is None else par, []).append(node)
    for lst in children.values():
        lst.sort()
    return children


def verify_join_tree(
    hg: Hypergraph, parent: Mapping[str, Optional[str]]
) -> bool:
    """Check the running-intersection property of a candidate join tree.

    For every attribute ``x``, the set of tree nodes whose edge contains
    ``x`` must induce a connected subtree. Used by tests and by the GHD
    validity checker.
    """
    names = list(hg.edge_names)
    if set(parent) != set(names):
        return False
    # Build adjacency.
    adj: Dict[str, Set[str]] = {n: set() for n in names}
    roots = 0
    for node, par in parent.items():
        if par is None:
            roots += 1
            continue
        if par not in adj:
            return False
        adj[node].add(par)
        adj[par].add(node)
    # Must be a forest: |edges| == |nodes| - #roots and connected per root.
    edge_count = sum(len(s) for s in adj.values()) // 2
    if edge_count != len(names) - roots:
        return False
    for attr in hg.attrs:
        holders = [n for n in names if attr in hg.edge(n)]
        if len(holders) <= 1:
            continue
        # BFS within holders.
        seen = {holders[0]}
        stack = [holders[0]]
        holder_set = set(holders)
        while stack:
            cur = stack.pop()
            for nxt in adj[cur]:
                if nxt in holder_set and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        if seen != holder_set:
            return False
    return True
