"""A cost-based, data-aware algorithm advisor (the paper's future work).

Section 6.3 closes with: "An important avenue for future work would be a
cost-based optimizer that is aware of both query structure and the
underlying data characteristics, and can make intelligent decisions on
the best algorithm to use — be it one of the algorithms in our toolbox,
or just BASELINE, or JOINFIRST — for a given occasion."

This module implements that optimizer as a lightweight advisor. The
Figure 7 planner (:mod:`repro.core.planner`) decides from the *query*
alone; the advisor additionally samples the *data*:

* per-join value multiplicities (System-R style distinct counts);
* *temporal selectivity* — the probability that a value-matching pair of
  tuples also overlaps in time, estimated by sampling matching pairs;
* the AGM bound on the non-temporal result size (JOINFIRST's cost);
* the final result size, estimated by pushing temporal selectivities
  through the cheapest join order.

Costs are abstract "row touches" scaled by per-algorithm constants that
reflect this library's measured per-row overheads; the advisor's job is
ranking, not absolute prediction. The test-suite checks the advisor
against ground truth on the regimes the paper discusses (Section 6.3's
summary): BASELINE on low-multiplicity TPC-style data, the toolkit on
dangling-heavy data, JOINFIRST on small non-temporal outputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..nontemporal.cover import agm_bound
from ..nontemporal.ghd import fhtw_ghd, find_guarded_partition, hhtw_ghd
from ..nontemporal.hash_join import shared_attrs
from .planner import plan
from .query import JoinQuery
from .relation import TemporalRelation

# Per-row cost constants (empirical, this library, CPython): the sweep
# pays more per event than a binary join pays per emitted row.
# ``timefirst_event_kernel`` is the same sweep on the columnar kernel
# engine (repro.kernels) — interning and the flat event loop cut the
# per-event constant by the measured BENCH_kernels.json speedup (~2.2×).
_COST = {
    "baseline_row": 1.0,
    "timefirst_event": 8.0,
    "timefirst_event_kernel": 3.6,
    "hybrid_bag_row": 3.0,
    "hybrid_interval_core": 4.0,
    "joinfirst_match": 1.2,
    "output_row": 1.0,
}


@dataclass
class AlgorithmCost:
    """One candidate with its estimated abstract cost."""

    algorithm: str
    cost: float
    detail: str


@dataclass
class Advice:
    """Ranked recommendation for one (query, database) pair."""

    query: JoinQuery
    ranked: List[AlgorithmCost]
    estimated_output: float
    temporal_selectivities: Dict[Tuple[str, str], float]

    @property
    def best(self) -> str:
        return self.ranked[0].algorithm

    def explain(self) -> str:
        lines = [
            f"query            : {self.query!r}",
            f"estimated output : {self.estimated_output:,.0f}",
        ]
        for (a, b), sel in sorted(self.temporal_selectivities.items()):
            lines.append(f"overlap({a}, {b})  : {sel:.2f}")
        lines.append("ranking (abstract row-touch cost):")
        for entry in self.ranked:
            lines.append(
                f"  {entry.algorithm:>16}: {entry.cost:>12,.0f}  ({entry.detail})"
            )
        return "\n".join(lines)


def advise(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    sample_size: int = 200,
    seed: int = 0,
) -> Advice:
    """Rank the applicable algorithms by estimated cost on this data."""
    query.validate(database)
    rng = random.Random(seed)
    n_total = query.input_size(database)
    hg = query.hypergraph

    # ------------------------------------------------------------------
    # Data statistics
    # ------------------------------------------------------------------
    pair_stats: Dict[Tuple[str, str], Tuple[float, float]] = {}
    selectivities: Dict[Tuple[str, str], float] = {}
    names = query.edge_names
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            on = shared_attrs(database[a], database[b])
            if not on:
                continue
            size, sel = _estimate_pair(
                database[a], database[b], on, rng, sample_size
            )
            pair_stats[(a, b)] = (size, sel)
            selectivities[(a, b)] = sel

    output_estimate = _estimate_output(query, database, pair_stats)
    sizes = {name: len(database[name]) for name in names}
    nontemporal_estimate = min(
        agm_bound(hg, sizes),
        _chain_value_estimate(query, database, pair_stats),
    )

    # ------------------------------------------------------------------
    # Candidate costs
    # ------------------------------------------------------------------
    candidates: List[AlgorithmCost] = []

    baseline_rows = _estimate_baseline_rows(query, database, pair_stats)
    candidates.append(
        AlgorithmCost(
            "baseline",
            _COST["baseline_row"] * baseline_rows
            + _COST["output_row"] * output_estimate,
            f"~{baseline_rows:,.0f} intermediate rows (best estimated order)",
        )
    )

    structural = plan(query)
    event_cost = (
        _COST["timefirst_event_kernel"]
        if structural.engine == "kernel"
        else _COST["timefirst_event"]
    )
    sweep_cost = event_cost * n_total * (
        1.0 if structural.query_class.value in ("hierarchical", "r-hierarchical")
        else 2.5
    )
    candidates.append(
        AlgorithmCost(
            "timefirst",
            sweep_cost + _COST["output_row"] * output_estimate,
            f"{n_total:,} input tuples swept "
            f"({structural.query_class.value}, {structural.engine} engine)",
        )
    )

    hybrid_bag_rows = _estimate_hybrid_bags(query, database, pair_stats)
    candidates.append(
        AlgorithmCost(
            "hybrid",
            _COST["hybrid_bag_row"] * hybrid_bag_rows
            + _COST["timefirst_event"] * hybrid_bag_rows
            + _COST["output_row"] * output_estimate,
            f"~{hybrid_bag_rows:,.0f} materialized bag rows",
        )
    )

    if find_guarded_partition(hg) is not None:
        candidates.append(
            AlgorithmCost(
                "hybrid-interval",
                _COST["hybrid_interval_core"] * n_total
                + _COST["output_row"] * output_estimate,
                "guarded partition: core join + interval-join residuals",
            )
        )

    candidates.append(
        AlgorithmCost(
            "joinfirst",
            _COST["joinfirst_match"] * nontemporal_estimate
            + _COST["output_row"] * output_estimate,
            f"~{nontemporal_estimate:,.0f} non-temporal matches enumerated",
        )
    )

    candidates.sort(key=lambda c: c.cost)
    return Advice(
        query=query,
        ranked=candidates,
        estimated_output=output_estimate,
        temporal_selectivities=selectivities,
    )


# ----------------------------------------------------------------------
# Estimation internals
# ----------------------------------------------------------------------
def _estimate_pair(
    left: TemporalRelation,
    right: TemporalRelation,
    on: Sequence[str],
    rng: random.Random,
    sample_size: int,
) -> Tuple[float, float]:
    """(value-join size, temporal selectivity) for one relation pair.

    Size uses the System-R formula; selectivity samples value-matching
    pairs through the right side's key index and measures how often the
    intervals actually overlap.
    """
    d = max(left.key_cardinality(on), right.key_cardinality(on), 1)
    size = len(left) * len(right) / d
    groups = right.group_by(on)
    left_pos = left.positions(on)
    rows = left.rows
    if not rows or not groups:
        return size, 0.0
    hits = 0
    trials = 0
    for _ in range(sample_size):
        values, interval = rows[rng.randrange(len(rows))]
        bucket = groups.get(tuple(values[p] for p in left_pos))
        if not bucket:
            continue
        _, other = bucket[rng.randrange(len(bucket))]
        trials += 1
        if interval.intersects(other):
            hits += 1
    if trials == 0:
        return size, 0.0
    return size, hits / trials


def _estimate_output(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    pair_stats: Mapping[Tuple[str, str], Tuple[float, float]],
) -> float:
    """Push value sizes × temporal selectivities through a greedy order."""
    names = list(query.edge_names)
    size = float(len(database[names[0]]))
    joined = {names[0]}
    remaining = names[1:]
    hg = query.hypergraph
    while remaining:
        # pick a connected relation if possible
        nxt = None
        for name in remaining:
            if any(
                set(hg.edge(name)) & set(hg.edge(j)) for j in joined
            ):
                nxt = name
                break
        if nxt is None:
            nxt = remaining[0]
        remaining.remove(nxt)
        factor = 1.0
        combined_sel = 1.0
        best_ratio = float(len(database[nxt]))
        for j in joined:
            key = (j, nxt) if (j, nxt) in pair_stats else (nxt, j)
            if key in pair_stats:
                pair_size, sel = pair_stats[key]
                ratio = pair_size / max(1.0, float(len(database[key[0]])))
                best_ratio = min(best_ratio, ratio)
                combined_sel *= max(sel, 1e-3)
        size = size * best_ratio * combined_sel
        joined.add(nxt)
    return max(size, 0.0)


def _chain_value_estimate(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    pair_stats: Mapping[Tuple[str, str], Tuple[float, float]],
) -> float:
    """Non-temporal output estimate via the same greedy chaining."""
    names = list(query.edge_names)
    size = float(len(database[names[0]]))
    joined = {names[0]}
    hg = query.hypergraph
    for name in names[1:]:
        ratios = []
        for j in joined:
            key = (j, name) if (j, name) in pair_stats else (name, j)
            if key in pair_stats:
                pair_size, _ = pair_stats[key]
                ratios.append(pair_size / max(1.0, float(len(database[key[0]]))))
        size *= min(ratios) if ratios else float(len(database[name]))
        joined.add(name)
    return size


def _estimate_baseline_rows(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    pair_stats: Mapping[Tuple[str, str], Tuple[float, float]],
) -> float:
    """Estimated intermediate rows of the best *temporal-aware* order.

    Unlike BASELINE's own value-only search, the advisor can fold the
    sampled temporal selectivity into each step — which is exactly the
    information Section 6.3 says a cost-based optimizer should use.
    """
    import itertools

    names = query.edge_names
    hg = query.hypergraph
    best = float("inf")
    orders = itertools.permutations(names) if len(names) <= 6 else [tuple(names)]
    for perm in orders:
        covered = set(hg.edge(perm[0]))
        ok = True
        for name in perm[1:]:
            if not (covered & set(hg.edge(name))):
                ok = False
                break
            covered |= set(hg.edge(name))
        if not ok:
            continue
        size = float(len(database[perm[0]]))
        total = 0.0
        joined = [perm[0]]
        for name in perm[1:]:
            ratios = []
            sels = []
            for j in joined:
                key = (j, name) if (j, name) in pair_stats else (name, j)
                if key in pair_stats:
                    pair_size, sel = pair_stats[key]
                    ratios.append(
                        pair_size / max(1.0, float(len(database[key[0]])))
                    )
                    sels.append(max(sel, 1e-3))
            ratio = min(ratios) if ratios else float(len(database[name]))
            sel = min(sels) if sels else 1.0
            size = size * ratio * sel
            total += size
            joined.append(name)
            if total >= best:
                break
        best = min(best, total)
    return best if best < float("inf") else 0.0


def _estimate_hybrid_bags(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    pair_stats: Mapping[Tuple[str, str], Tuple[float, float]],
) -> float:
    """Estimated total materialized bag size for the Theorem-12 GHD."""
    hg = query.hypergraph
    f_width, f_ghd = fhtw_ghd(hg)
    h_width, h_ghd = hhtw_ghd(hg)
    ghd = h_ghd if h_width <= f_width + 1 else f_ghd
    total = 0.0
    for bag, group in ghd.groups.items():
        if len(group) == 1:
            total += float(len(database[group[0]]))
            continue
        size = float(len(database[group[0]]))
        joined = [group[0]]
        for name in group[1:]:
            ratios = []
            for j in joined:
                key = (j, name) if (j, name) in pair_stats else (name, j)
                if key in pair_stats:
                    pair_size, _ = pair_stats[key]
                    ratios.append(
                        pair_size / max(1.0, float(len(database[key[0]])))
                    )
            size *= min(ratios) if ratios else float(len(database[name]))
            joined.append(name)
        total += size
    return total
