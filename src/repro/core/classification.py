"""Query classification: hierarchical, r-hierarchical, attribute trees.

Section 2.2 of the paper classifies join queries into hierarchical ⊂
acyclic ⊂ general, and Section 3.2 builds the near-linear temporal join on
the *attribute tree* of a hierarchical query. This module implements:

* :func:`is_hierarchical` — the ``E_x ⊆ E_y ∨ E_y ⊆ E_x ∨ E_x ∩ E_y = ∅``
  test;
* :func:`is_r_hierarchical` — hierarchical after reduction (removal of
  edges contained in other edges);
* :func:`reduce_instance` — footnote 2's linear-time instance reduction:
  absorbing ``R_e`` into ``R_{e'}`` (``e ⊆ e'``) via a semijoin that
  intersects valid intervals;
* :class:`AttributeTree` — the attribute tree *and* generalized join tree
  of Figure 5, with relation leaves, used directly by the hierarchical
  sweep state;
* :func:`classify` — the coarse :class:`QueryClass` used by the planner.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from .errors import QueryError
from .hypergraph import Hypergraph
from .relation import TemporalRelation


class QueryClass(enum.Enum):
    """Coarse complexity class of a join query (Figure 3 / Figure 7)."""

    HIERARCHICAL = "hierarchical"
    R_HIERARCHICAL = "r-hierarchical"
    ACYCLIC = "acyclic"  # acyclic but not r-hierarchical
    CYCLIC = "cyclic"


def is_hierarchical(hg: Hypergraph) -> bool:
    """True iff for all attribute pairs, ``E_x`` and ``E_y`` are nested or disjoint."""
    attrs = hg.attrs
    edge_sets = {a: hg.edges_of(a) for a in attrs}
    for i, x in enumerate(attrs):
        ex = edge_sets[x]
        for y in attrs[i + 1 :]:
            ey = edge_sets[y]
            if ex <= ey or ey <= ex:
                continue
            if ex & ey:
                return False
    return True


def is_r_hierarchical(hg: Hypergraph) -> bool:
    """True iff the *reduced* query (no edge contained in another) is hierarchical."""
    reduced, _ = hg.reduce()
    return is_hierarchical(reduced)


def classify(hg: Hypergraph) -> QueryClass:
    """Classify a query per the paper's hierarchy of classes.

    ``HIERARCHICAL`` is reported only when the query is hierarchical as
    given; queries that become hierarchical after reduction are reported as
    ``R_HIERARCHICAL`` (they still admit the near-linear algorithm after
    the footnote-2 instance reduction).
    """
    if is_hierarchical(hg):
        return QueryClass.HIERARCHICAL
    if is_r_hierarchical(hg):
        return QueryClass.R_HIERARCHICAL
    if hg.is_acyclic():
        return QueryClass.ACYCLIC
    return QueryClass.CYCLIC


def reduce_instance(
    hg: Hypergraph, database: Mapping[str, TemporalRelation]
) -> Tuple[Hypergraph, Dict[str, TemporalRelation]]:
    """Reduce a temporal instance per footnote 2 of the paper.

    For every absorbed edge ``e ⊆ e'``, replace ``R_{e'}`` by

    ``{⟨a, I_a ∩ I_b⟩ | a ∈ R_{e'}, b ∈ R_e, b = π_e(a)}``

    dropping tuples whose interval intersection is empty. Because tuples in
    ``R_e`` are distinct, each ``a`` matches at most one ``b``, so the
    absorption is a hash lookup per tuple — linear time overall.

    Returns the reduced hypergraph and the new database restricted to the
    surviving edges. The temporal join of the reduced instance equals the
    temporal join of the original projected onto the same attributes — for
    r-hierarchical queries this turns the instance into one a hierarchical
    algorithm can process.
    """
    reduced, absorbed = hg.reduce()
    db: Dict[str, TemporalRelation] = {
        name: database[name] for name in reduced.edge_names
    }
    # Absorption hosts may themselves chain (e ⊆ e' ⊆ e''): resolve to the
    # surviving host.
    def resolve(name: str) -> str:
        while name in absorbed:
            name = absorbed[name]
        return name

    for small_name, host_name in absorbed.items():
        host_name = resolve(host_name)
        small = database[small_name]
        host = db[host_name]
        small_attrs = list(small.attrs)
        lookup = {values: interval for values, interval in small}
        pos = host.positions(small_attrs)
        rows = []
        for values, interval in host:
            key = tuple(values[p] for p in pos)
            other = lookup.get(key)
            if other is None:
                continue
            joint = interval.intersect(other)
            if joint is not None:
                rows.append((values, joint))
        db[host_name] = TemporalRelation(host.name, host.attrs, rows)
    return reduced, db


# ----------------------------------------------------------------------
# Attribute tree / generalized join tree (Figure 5)
# ----------------------------------------------------------------------
@dataclass
class AttrNode:
    """One node of the generalized join tree.

    ``path_attrs`` is the paper's ``V_u`` — the attributes on the path from
    the node to the root. ``relation`` is set on leaves only and names the
    query hyperedge whose attribute set equals ``path_attrs``.
    """

    node_id: int
    attr: Optional[str]  # None for the virtual root and for relation leaves
    parent: Optional[int]
    path_attrs: Tuple[str, ...]
    children: List[int] = field(default_factory=list)
    relation: Optional[str] = None

    @property
    def is_leaf(self) -> bool:
        return not self.children


class AttributeTree:
    """The attribute tree of a hierarchical query, with relation leaves.

    Construction (Section 3.2): attributes are ordered by containment of
    their incidence sets ``E_x``; ``x`` is a descendant of ``y`` when
    ``E_x ⊆ E_y``. Attributes with *equal* incidence sets are chained in a
    deterministic order (they always co-occur, so any order is valid). A
    virtual root joins the components of non-connected queries. Finally,
    each relation ``e`` whose deepest attribute node is internal receives an
    explicit relation leaf ``w`` with ``V_w = e`` so that every relation is
    a root-to-leaf path.

    The tree depends only on the query, never on the data (the dynamic
    per-node sets live in :class:`repro.algorithms.hierarchical`).
    """

    def __init__(self, hg: Hypergraph) -> None:
        if not is_hierarchical(hg):
            raise QueryError(
                "attribute tree requires a hierarchical query; got "
                f"{hg!r} (classify() = {classify(hg).value})"
            )
        self.hypergraph = hg
        self.nodes: List[AttrNode] = []
        self.leaf_of_relation: Dict[str, int] = {}
        self._build()

    # ------------------------------------------------------------------
    def _new_node(
        self,
        attr: Optional[str],
        parent: Optional[int],
        path_attrs: Tuple[str, ...],
        relation: Optional[str] = None,
    ) -> int:
        node_id = len(self.nodes)
        node = AttrNode(node_id, attr, parent, path_attrs, relation=relation)
        self.nodes.append(node)
        if parent is not None:
            self.nodes[parent].children.append(node_id)
        return node_id

    def _build(self) -> None:
        hg = self.hypergraph
        incidence: Dict[str, FrozenSet[str]] = {a: hg.edges_of(a) for a in hg.attrs}

        # Group attributes with identical incidence sets; they form chains.
        groups: Dict[FrozenSet[str], List[str]] = {}
        for a in hg.attrs:
            groups.setdefault(incidence[a], []).append(a)

        # Parent group of a group g: the group with the smallest strict
        # superset incidence. Hierarchy guarantees uniqueness.
        group_keys = sorted(groups, key=lambda s: (-len(s), sorted(s)))
        parent_group: Dict[FrozenSet[str], Optional[FrozenSet[str]]] = {}
        for g in group_keys:
            best: Optional[FrozenSet[str]] = None
            for h in group_keys:
                if h == g or not (g < h):
                    continue
                if best is None or h < best:
                    best = h
            parent_group[g] = best

        root = self._new_node(None, None, ())
        self._root_id = root

        # Materialize groups top-down; each group becomes a chain of
        # attribute nodes.
        chain_bottom: Dict[FrozenSet[str], int] = {}
        remaining = list(group_keys)
        while remaining:
            progressed = False
            for g in list(remaining):
                pg = parent_group[g]
                if pg is not None and pg not in chain_bottom:
                    continue
                parent_id = root if pg is None else chain_bottom[pg]
                for attr in sorted(groups[g]):
                    path = self.nodes[parent_id].path_attrs + (attr,)
                    parent_id = self._new_node(attr, parent_id, path)
                chain_bottom[g] = parent_id
                remaining.remove(g)
                progressed = True
            if not progressed:  # pragma: no cover - defensive
                raise QueryError("attribute tree construction did not converge")

        # Attach relation leaves. The deepest attribute of relation e is the
        # one whose incidence set is the smallest among e's attributes.
        path_index: Dict[Tuple[str, ...], int] = {
            tuple(sorted(n.path_attrs)): n.node_id
            for n in self.nodes
            if n.attr is not None
        }
        for name in hg.edge_names:
            eattrs = tuple(sorted(hg.edge(name)))
            try:
                deepest = path_index[eattrs]
            except KeyError:  # pragma: no cover - guarded by hierarchy proof
                raise QueryError(
                    f"relation {name!r} does not form a root path in the "
                    "attribute tree; query is not hierarchical"
                ) from None
            node = self.nodes[deepest]
            if node.is_leaf and node.relation is None:
                node.relation = name
                self.leaf_of_relation[name] = node.node_id
            else:
                leaf = self._new_node(None, deepest, node.path_attrs, relation=name)
                self.leaf_of_relation[name] = leaf

        # A node that held a relation but later received children must move
        # its relation to an explicit leaf: fix in a second pass.
        for node in list(self.nodes):
            if node.relation is not None and node.children:
                leaf = self._new_node(None, node.node_id, node.path_attrs,
                                      relation=node.relation)
                self.leaf_of_relation[node.relation] = leaf
                node.relation = None

    # ------------------------------------------------------------------
    @property
    def root(self) -> AttrNode:
        return self.nodes[self._root_id]

    def node(self, node_id: int) -> AttrNode:
        return self.nodes[node_id]

    def parent(self, node_id: int) -> Optional[AttrNode]:
        p = self.nodes[node_id].parent
        return None if p is None else self.nodes[p]

    def path_to_root(self, node_id: int) -> List[AttrNode]:
        """Nodes from ``node_id`` (inclusive) up to and including the root."""
        out = []
        cur: Optional[int] = node_id
        while cur is not None:
            node = self.nodes[cur]
            out.append(node)
            cur = node.parent
        return out

    def leaves(self) -> List[AttrNode]:
        return [n for n in self.nodes if n.is_leaf]

    def depth(self) -> int:
        """Longest root-to-leaf path length (O(1) in the query size)."""
        best = 0
        for leaf in self.leaves():
            best = max(best, len(self.path_to_root(leaf.node_id)) - 1)
        return best

    def pretty(self) -> str:
        """ASCII rendering used by ``planner.explain()`` and the Table 1 bench."""
        lines: List[str] = []

        def walk(node_id: int, indent: int) -> None:
            node = self.nodes[node_id]
            if node.attr is not None:
                label = node.attr
                if node.relation is not None:
                    label = f"{node.attr} leaf[{node.relation}]"
            elif node.relation is not None:
                label = f"leaf[{node.relation}: {','.join(node.path_attrs)}]"
            else:
                label = "(root)"
            lines.append("  " * indent + label)
            for c in node.children:
                walk(c, indent + 1)

        walk(self._root_id, 0)
        return "\n".join(lines)
