"""Core model: intervals, relations, queries, classification, planning."""

from .advisor import Advice, AlgorithmCost, advise

from .classification import AttributeTree, QueryClass, classify, is_hierarchical, is_r_hierarchical, reduce_instance
from .durability import (
    coalesce_results,
    temporal_join_multi,
    durability,
    explode_interval_sets,
    lead_lag_transform,
    relative_pattern_transform,
    shrink_database,
    widen_instants,
)
from .errors import IntervalError, PlanError, QueryError, ReproError, SchemaError
from .hypergraph import Hypergraph, verify_join_tree
from .interval import Interval, IntervalSet, intersect_all
from .io import (
    read_database_csv,
    read_relation_csv,
    write_database_csv,
    write_relation_csv,
    write_results_csv,
)
from .query import Database, JoinQuery, self_join_database
from .relation import TemporalRelation
from .result import JoinResultSet, merge_result_sets
from .timeline import Timeline, busiest_instant, concurrency_timeline, result_timeline

__all__ = [
    "Advice",
    "AlgorithmCost",
    "advise",
    "AttributeTree",
    "Database",
    "Hypergraph",
    "Interval",
    "IntervalError",
    "IntervalSet",
    "JoinQuery",
    "JoinResultSet",
    "PlanError",
    "QueryClass",
    "QueryError",
    "ReproError",
    "SchemaError",
    "TemporalRelation",
    "classify",
    "coalesce_results",
    "durability",
    "explode_interval_sets",
    "intersect_all",
    "is_hierarchical",
    "is_r_hierarchical",
    "lead_lag_transform",
    "merge_result_sets",
    "read_database_csv",
    "read_relation_csv",
    "reduce_instance",
    "relative_pattern_transform",
    "self_join_database",
    "shrink_database",
    "Timeline",
    "busiest_instant",
    "concurrency_timeline",
    "result_timeline",
    "verify_join_tree",
    "temporal_join_multi",
    "widen_instants",
    "write_database_csv",
    "write_relation_csv",
    "write_results_csv",
]
