"""Timelines: how quantities evolve along the time axis.

Durability analysis often needs more than a single count: *when* were
the patterns valid, how many held simultaneously, when did the join's
result set peak? This module builds concurrency timelines from interval
collections with one endpoint sweep (O(n log n)):

* :func:`concurrency_timeline` — number of intervals valid at each
  instant (e.g. live join results over time);
* :func:`result_timeline` — the same, directly from a
  :class:`~repro.core.result.JoinResultSet`;
* :class:`Timeline` — the resulting function, with peak / value lookup /
  integration / sampling helpers.

Closed intervals make the concurrency function subtle: at a shared
endpoint both the ending and the starting interval count, so the value
*at* an event instant can exceed the value on either side. The timeline
therefore stores, per event instant, the value exactly at that instant
and the value on the open gap to the next instant.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .errors import SchemaError
from .interval import Interval, Number
from .result import JoinResultSet


@dataclass(frozen=True)
class Timeline:
    """A step function with distinguished values at its event instants.

    ``points[i]`` is an event instant; ``at_points[i]`` the function
    value exactly there; ``between[i]`` the value on the open interval
    ``(points[i], points[i+1])`` (and ``between[-1]`` past the last
    point, always 0 for concurrency timelines). Before the first point
    the value is 0.
    """

    points: Tuple[Number, ...]
    at_points: Tuple[float, ...]
    between: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.points) != len(self.at_points) or (
            self.points and len(self.between) != len(self.points)
        ):
            raise SchemaError("points / at_points / between must align")

    # ------------------------------------------------------------------
    def value_at(self, t: Number) -> float:
        """Function value at instant ``t``."""
        if not self.points:
            return 0.0
        idx = bisect.bisect_left(self.points, t)
        if idx < len(self.points) and self.points[idx] == t:
            return self.at_points[idx]
        if idx == 0:
            return 0.0
        return self.between[idx - 1]

    def peak(self) -> Tuple[Number, float]:
        """(instant, value) of the maximum (earliest among ties).

        The maximum of a concurrency timeline is always attained at an
        event instant (values can only drop strictly between events).
        """
        if not self.points:
            return (0, 0.0)
        best_val = max(self.at_points)
        for point, value in zip(self.points, self.at_points):
            if value == best_val:
                return (point, value)
        return (self.points[0], self.at_points[0])  # pragma: no cover

    def integral(self) -> float:
        """∫ f dt (event instants have measure zero)."""
        total = 0.0
        for i in range(len(self.points) - 1):
            total += self.between[i] * (self.points[i + 1] - self.points[i])
        return total

    def support(self) -> Interval:
        """Smallest interval outside which the function is 0."""
        if not self.points:
            return Interval(0, 0)
        return Interval(self.points[0], self.points[-1])

    def sample(self, instants: Sequence[Number]) -> List[float]:
        """Function values at the given instants."""
        return [self.value_at(t) for t in instants]

    def segments(self) -> List[Tuple[Number, Number, float]]:
        """(start, end, value) of every open inter-event segment."""
        out = []
        for i in range(len(self.points) - 1):
            out.append((self.points[i], self.points[i + 1], self.between[i]))
        return out

    def nonzero_segments(self) -> List[Tuple[Number, Number, float]]:
        return [(s, e, v) for s, e, v in self.segments() if v != 0]


def concurrency_timeline(intervals: Iterable[Interval]) -> Timeline:
    """How many of the given closed intervals are valid at each instant.

    Closed-interval semantics: at a shared endpoint both the ending and
    the starting interval count (the value *at* an instant includes
    intervals ending there; the value just after excludes them).
    """
    events: List[Tuple[Number, int]] = []
    for iv in intervals:
        events.append((iv.lo, +1))
        events.append((iv.hi, -1))
    events.sort(key=lambda e: (e[0], -e[1]))  # starts before ends at ties
    return timeline_from_sorted_events(events)


def timeline_from_sorted_events(
    events: Iterable[Tuple[Number, int]]
) -> Timeline:
    """Build a concurrency :class:`Timeline` from pre-sorted endpoint events.

    ``events`` yields ``(time, delta)`` pairs — ``+1`` for an interval
    start, ``-1`` for an end — already ordered by time with starts
    before ends at equal instants. This is exactly the order of the
    kernel engine's pre-sorted event arrays
    (:meth:`repro.kernels.KernelColumns.timeline`), so timelines come
    straight off the shared sorted structure instead of re-sweeping the
    raw intervals. :func:`concurrency_timeline` delegates here after
    sorting, so both construction paths share one aggregation.
    """
    points: List[Number] = []
    at_points: List[float] = []
    between: List[float] = []
    current = 0
    pending_t: Number = 0
    starts = ends = 0
    have_pending = False
    for t, delta in events:
        if have_pending and t != pending_t:
            points.append(pending_t)
            at_points.append(float(current + starts))
            current = current + starts - ends
            between.append(float(current))
            starts = ends = 0
        pending_t = t
        have_pending = True
        if delta > 0:
            starts += 1
        else:
            ends += 1
    if have_pending:
        points.append(pending_t)
        at_points.append(float(current + starts))
        current = current + starts - ends
        between.append(float(current))
    return Timeline(tuple(points), tuple(at_points), tuple(between))


def result_timeline(results: JoinResultSet) -> Timeline:
    """Concurrency timeline of a join result set's valid intervals."""
    return concurrency_timeline(iv for _, iv in results)


def busiest_instant(results: JoinResultSet) -> Tuple[Number, float]:
    """The instant when the most results were simultaneously valid."""
    return result_timeline(results).peak()
