"""Join result containers shared by every algorithm.

All algorithms in :mod:`repro.algorithms` return a :class:`JoinResultSet`:
an ordered collection of ``(values, interval)`` pairs where ``values`` is
laid out in the query's output attribute order. The container offers the
operations the experiments need — durability filtering, counting by
threshold (Figure 1 right), normalization for cross-algorithm equality —
without imposing any cost on the enumeration hot path (results append to a
plain list).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .errors import SchemaError
from .interval import Interval, Number

ResultRow = Tuple[Tuple[object, ...], Interval]


class JoinResultSet:
    """Ordered temporal join results with their valid intervals."""

    __slots__ = ("attrs", "_rows")

    def __init__(
        self,
        attrs: Sequence[str],
        rows: Iterable[ResultRow] = (),
    ) -> None:
        self.attrs: Tuple[str, ...] = tuple(attrs)
        self._rows: List[ResultRow] = list(rows)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self._rows)

    def __getitem__(self, idx: int) -> ResultRow:
        return self._rows[idx]

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JoinResultSet(attrs={list(self.attrs)}, k={len(self._rows)})"

    def append(self, values: Tuple[object, ...], interval: Interval) -> None:
        """Hot-path append used by the enumeration procedures."""
        self._rows.append((values, interval))

    def extend(self, rows: Iterable[ResultRow]) -> None:
        self._rows.extend(rows)

    @property
    def rows(self) -> List[ResultRow]:
        return self._rows

    # ------------------------------------------------------------------
    # Comparisons and transformations
    # ------------------------------------------------------------------
    def normalized(self) -> List[ResultRow]:
        """Sorted copy of the rows, for cross-algorithm equality checks."""
        return sorted(self._rows, key=lambda r: (r[0], r[1].lo, r[1].hi))

    def same_results(self, other: "JoinResultSet") -> bool:
        """True iff both sets contain exactly the same (values, interval) rows."""
        return self.attrs == other.attrs and self.normalized() == other.normalized()

    def filter_durable(self, tau: Number) -> "JoinResultSet":
        """Keep results whose valid interval has duration ≥ ``tau``."""
        return JoinResultSet(
            self.attrs,
            ((v, iv) for v, iv in self._rows if iv.duration >= tau),
        )

    def expand_intervals(self, amount: Number) -> "JoinResultSet":
        """Undo a τ/2 shrink on the *result* intervals.

        Algorithms evaluate τ-durable joins on the shrunk instance; the
        result intervals there are the shrunk intersections, so expanding
        them by τ/2 recovers the original valid intervals.
        """
        if amount == 0:
            return self
        return JoinResultSet(
            self.attrs,
            ((v, iv.expand(amount)) for v, iv in self._rows),
        )

    def values_only(self) -> List[Tuple[object, ...]]:
        """Just the value tuples, for comparisons against non-temporal joins."""
        return [v for v, _ in self._rows]

    def count_by_thresholds(self, thresholds: Sequence[Number]) -> Dict[Number, int]:
        """For each τ, how many results have durability ≥ τ (Figure 1 right)."""
        out: Dict[Number, int] = {}
        durations = sorted(iv.duration for _, iv in self._rows)
        import bisect

        for tau in thresholds:
            idx = bisect.bisect_left(durations, tau)
            out[tau] = len(durations) - idx
        return out

    def project(self, attrs: Sequence[str]) -> "JoinResultSet":
        """Project results (with duplicate elimination, intervals coalesced
        by keeping the widest span per value tuple)."""
        pos = [self.attrs.index(a) for a in attrs]
        best: Dict[Tuple[object, ...], Interval] = {}
        order: List[Tuple[object, ...]] = []
        for values, interval in self._rows:
            key = tuple(values[p] for p in pos)
            if key not in best:
                best[key] = interval
                order.append(key)
            else:
                cur = best[key]
                best[key] = Interval(min(cur.lo, interval.lo), max(cur.hi, interval.hi))
        return JoinResultSet(attrs, ((k, best[k]) for k in order))


def merge_result_sets(
    attrs: Sequence[str], parts: Iterable[JoinResultSet]
) -> JoinResultSet:
    """Concatenate result sets that share an attribute layout."""
    out = JoinResultSet(attrs)
    for part in parts:
        if tuple(part.attrs) != tuple(attrs):
            raise SchemaError(
                f"cannot merge results with layout {part.attrs} into {attrs}"
            )
        out.extend(part.rows)
    return out
