"""CSV import/export for temporal relations and join results.

Temporal datasets in the wild (the paper's Flights and DBLP inputs
included) arrive as delimited text with two timestamp columns. This
module reads and writes that shape:

* :func:`read_relation_csv` / :func:`write_relation_csv` — a
  :class:`TemporalRelation` as ``attr1,...,attrN,<start>,<end>`` rows;
* :func:`read_database_csv` — one file per relation of a query;
* :func:`write_results_csv` — a :class:`JoinResultSet` with its valid
  intervals, ready for downstream analysis.

Values are read as strings by default; pass ``value_parser`` to coerce
(e.g. ``int``). Unbounded endpoints serialize as the literals ``-inf`` /
``inf``. Durations and timestamps are parsed as ``int`` when possible,
``float`` otherwise, so round-trips preserve the exact endpoint types
the sweep sorts on. Non-finite garbage (``nan`` and friends) and
malformed endpoints are rejected at read time with a
:class:`~repro.core.errors.SchemaError` citing ``path:lineno``.
"""

from __future__ import annotations

import csv
import math
import pathlib
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Union

from .errors import IntervalError, SchemaError
from .interval import Interval, Number
from .query import JoinQuery
from .relation import TemporalRelation
from .result import JoinResultSet

PathLike = Union[str, pathlib.Path]

START_COLUMN = "valid_from"
END_COLUMN = "valid_to"


def _parse_time(token: str) -> Number:
    """Parse one endpoint token; NaN and garbage raise ``ValueError``.

    ``±inf`` spellings are legal (unbounded endpoints); anything that
    Python would parse to NaN (``nan``, ``NaN``, ``-nan`` …) is rejected
    here so the caller can attach file/line context instead of the old
    behaviour of failing much later inside ``Interval.__post_init__``
    with no hint of where the bad row came from.
    """
    token = token.strip()
    if token in ("inf", "+inf", "Infinity"):
        return math.inf
    if token in ("-inf", "-Infinity"):
        return -math.inf
    try:
        return int(token)
    except ValueError:
        value = float(token)  # may raise ValueError: caller adds context
    if math.isnan(value):
        # Internal control flow: read_relation_csv catches ValueError and
        # re-raises SchemaError with path:lineno context, matching the
        # ValueError float() raises two lines up for garbage tokens.
        raise ValueError(  # repro-lint: disable=error-taxonomy
            f"NaN is not a valid interval endpoint: {token!r}"
        )
    return value


def _format_time(value: Number) -> str:
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return repr(value)


def write_relation_csv(relation: TemporalRelation, path: PathLike) -> None:
    """Write ``relation`` as CSV with trailing interval columns."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(relation.attrs) + [START_COLUMN, END_COLUMN])
        for values, interval in relation:
            writer.writerow(
                [str(v) for v in values]
                + [_format_time(interval.lo), _format_time(interval.hi)]
            )


def read_relation_csv(
    path: PathLike,
    name: Optional[str] = None,
    value_parser: Optional[Callable[[str], object]] = None,
    check_distinct: bool = True,
) -> TemporalRelation:
    """Read a temporal relation written by :func:`write_relation_csv`.

    The last two columns must be the interval endpoints (by the standard
    header names, or simply positionally when the header differs).
    """
    path = pathlib.Path(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty; expected a CSV header") from None
        if len(header) < 3:
            raise SchemaError(
                f"{path}: need at least one attribute plus two interval "
                f"columns, got header {header}"
            )
        attrs = tuple(h.strip() for h in header[:-2])
        rows = []
        parse = value_parser or (lambda s: s)
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise SchemaError(
                    f"{path}:{lineno}: expected {len(header)} columns, got {len(row)}"
                )
            values = tuple(parse(v) for v in row[:-2])
            try:
                interval = Interval(_parse_time(row[-2]), _parse_time(row[-1]))
            except (ValueError, IntervalError) as exc:
                raise SchemaError(
                    f"{path}:{lineno}: bad interval "
                    f"[{row[-2]!r}, {row[-1]!r}]: {exc}"
                ) from None
            rows.append((values, interval))
    return TemporalRelation(
        name or path.stem, attrs, rows, check_distinct=check_distinct
    )


def read_database_csv(
    query: JoinQuery,
    paths: Mapping[str, PathLike],
    value_parser: Optional[Callable[[str], object]] = None,
) -> Dict[str, TemporalRelation]:
    """Read one CSV per query relation and validate against the query."""
    db = {
        name: read_relation_csv(path, name=name, value_parser=value_parser)
        for name, path in paths.items()
    }
    query.validate(db)
    return db


def write_results_csv(results: JoinResultSet, path: PathLike) -> None:
    """Write join results with their valid intervals and durabilities."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            list(results.attrs) + [START_COLUMN, END_COLUMN, "durability"]
        )
        for values, interval in results:
            writer.writerow(
                [str(v) for v in values]
                + [
                    _format_time(interval.lo),
                    _format_time(interval.hi),
                    _format_time(interval.duration),
                ]
            )


def write_database_csv(
    database: Mapping[str, TemporalRelation], directory: PathLike
) -> Dict[str, pathlib.Path]:
    """Write every relation of a database into ``directory`` as CSVs."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out = {}
    for name, relation in database.items():
        path = directory / f"{name}.csv"
        write_relation_csv(relation, path)
        out[name] = path
    return out
