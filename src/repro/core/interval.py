"""Closed time intervals and disjoint interval sets.

The paper attaches to every tuple a *valid interval* ``[t-, t+]`` (Section
2.1). Intervals here are closed on both ends and may be unbounded on either
side, which lets a non-temporal relation participate in a temporal join by
using ``Interval.always()`` (= ``(-inf, +inf)``).

Two closed intervals intersect iff ``max(lo1, lo2) <= min(hi1, hi2)`` —
touching endpoints *do* count as intersecting, which is why the sweep in
:mod:`repro.algorithms.timefirst` processes insertions before expirations at
equal timestamps.

:class:`IntervalSet` implements the "set of disjoint intervals" extension
mentioned in the paper's remarks (a tuple inserted and deleted repeatedly,
or coalescing after projection).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .errors import IntervalError

Number = Union[int, float]

_NEG_INF = float("-inf")
_POS_INF = float("inf")


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[lo, hi]`` on the time axis.

    ``lo`` may be ``-inf`` and ``hi`` may be ``+inf``. A degenerate interval
    with ``lo == hi`` is a single instant and is perfectly valid: it is how
    instant-stamped data is represented before the τ-widening transform of
    :mod:`repro.core.durability`.
    """

    lo: Number
    hi: Number

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise IntervalError(f"empty interval literal [{self.lo}, {self.hi}]")
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise IntervalError("interval endpoints must not be NaN")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def always() -> "Interval":
        """The interval ``(-inf, +inf)`` used for non-temporal tuples."""
        return Interval(_NEG_INF, _POS_INF)

    @staticmethod
    def instant(t: Number) -> "Interval":
        """The degenerate interval ``[t, t]``."""
        return Interval(t, t)

    @classmethod
    def _fast(cls, lo: Number, hi: Number) -> "Interval":
        """Unchecked construction for hot sweep kernels.

        Skips ``__init__``/``__post_init__`` validation (ordering and NaN
        checks), which dominates per-pair cost in the interval-join inner
        loops. Callers must guarantee ``lo <= hi`` and non-NaN endpoints —
        true by construction wherever both values are endpoints of already
        validated intervals and ``lo`` is a max of los / ``hi`` a min of
        his. The resulting object is indistinguishable from a checked one
        (same fields, equality, hash, ordering).
        """
        self = object.__new__(cls)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        return self

    @staticmethod
    def coerce(value: "IntervalLike") -> "Interval":
        """Build an :class:`Interval` from an interval, pair, or instant."""
        if isinstance(value, Interval):
            return value
        if isinstance(value, (tuple, list)) and len(value) == 2:
            return Interval(value[0], value[1])
        if isinstance(value, (int, float)):
            return Interval.instant(value)
        raise IntervalError(f"cannot interpret {value!r} as an interval")

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, t: Number) -> bool:
        """True iff timestamp ``t`` lies inside this interval."""
        return self.lo <= t <= self.hi

    def intersects(self, other: "Interval") -> bool:
        """True iff the two closed intervals share at least one instant."""
        return max(self.lo, other.lo) <= min(self.hi, other.hi)

    def covers(self, other: "Interval") -> bool:
        """True iff ``other`` is fully contained in this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def precedes(self, other: "Interval", gap: Number = 0) -> bool:
        """True iff this interval ends at least ``gap`` before ``other``."""
        return self.hi + gap <= other.lo

    @property
    def is_bounded(self) -> bool:
        """True iff neither endpoint is infinite."""
        return self.lo > _NEG_INF and self.hi < _POS_INF

    @property
    def is_instant(self) -> bool:
        """True iff the interval is a single point."""
        return self.lo == self.hi

    # ------------------------------------------------------------------
    # Measures and combinators
    # ------------------------------------------------------------------
    @property
    def duration(self) -> Number:
        """Length of the interval (the paper's *durability*); may be inf."""
        return self.hi - self.lo

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """Intersection with ``other``, or ``None`` when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def shift(self, delta: Number) -> "Interval":
        """Translate both endpoints by ``delta``."""
        return Interval(self.lo + delta, self.hi + delta)

    def shrink(self, amount: Number) -> Optional["Interval"]:
        """Shrink both ends inward by ``amount`` (the τ/2 transform).

        Returns ``None`` when the interval vanishes, mirroring the paper's
        rule that tuples with empty shrunk intervals are removed. An
        infinite endpoint is a *fixed point*: an unbounded side stays
        unbounded no matter the amount, so ``always().shrink(inf)`` is
        ``always()`` rather than the former opaque ``NaN`` failure
        (``-inf + inf``). Durability agrees: an unbounded interval has
        infinite duration and survives every threshold.
        """
        lo = self.lo if math.isinf(self.lo) else self.lo + amount
        hi = self.hi if math.isinf(self.hi) else self.hi - amount
        if lo > hi:
            return None
        return Interval(lo, hi)

    def expand(self, amount: Number) -> "Interval":
        """Grow both ends outward by ``amount`` (inverse of :meth:`shrink`).

        Infinite endpoints are fixed points, matching :meth:`shrink`, so
        for finite ``amount`` the round trip ``shrink(a).expand(a)`` is
        the identity on every interval that survives the shrink.
        """
        lo = self.lo if math.isinf(self.lo) else self.lo - amount
        hi = self.hi if math.isinf(self.hi) else self.hi + amount
        return Interval(lo, hi)

    def clip(self, other: "Interval") -> Optional["Interval"]:
        """Alias of :meth:`intersect`, reads better when pruning residuals."""
        return self.intersect(other)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Number]:
        yield self.lo
        yield self.hi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo = "-inf" if self.lo == _NEG_INF else repr(self.lo)
        hi = "+inf" if self.hi == _POS_INF else repr(self.hi)
        return f"[{lo}, {hi}]"


IntervalLike = Union[Interval, Tuple[Number, Number], List[Number], Number]


def endpoint_eq(a: Number, b: Number) -> bool:
    """Exact identity of two *stored* interval endpoints.

    Valid only for endpoints copied verbatim from the same source (e.g. a
    cached ``max`` against the interval it came from) — never for values
    that went through independent τ/2 shrink/expand arithmetic, where
    float rounding makes exact equality meaningless. Keeping the ``==``
    here, in the module that owns canonical endpoint comparisons, lets
    call sites state that intent instead of carrying lint suppressions.
    """
    return a == b


def intersect_all(intervals: Iterable[Interval]) -> Optional[Interval]:
    """Intersect an iterable of intervals; ``None`` if the result is empty.

    An empty iterable yields ``Interval.always()`` — the neutral element —
    matching the convention that a join over zero temporal relations imposes
    no temporal constraint.
    """
    lo = _NEG_INF
    hi = _POS_INF
    for iv in intervals:
        if iv.lo > lo:
            lo = iv.lo
        if iv.hi < hi:
            hi = iv.hi
        if lo > hi:
            return None
    return Interval(lo, hi)


class IntervalSet:
    """An immutable set of pairwise-disjoint, coalesced closed intervals.

    Supports the multi-interval tuple model from the paper's remarks: a
    tuple that is inserted and deleted several times carries one interval
    per validity episode. Construction coalesces overlapping or touching
    intervals, keeps them sorted, and the set behaves like a sequence.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[IntervalLike] = ()) -> None:
        coerced = sorted(
            (Interval.coerce(iv) for iv in intervals), key=lambda iv: (iv.lo, iv.hi)
        )
        merged: List[Interval] = []
        for iv in coerced:
            if merged and iv.lo <= merged[-1].hi:
                last = merged[-1]
                if iv.hi > last.hi:
                    merged[-1] = Interval(last.lo, iv.hi)
            else:
                merged.append(iv)
        self._intervals: Tuple[Interval, ...] = tuple(merged)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __getitem__(self, idx: int) -> Interval:
        return self._intervals[idx]

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(iv) for iv in self._intervals)
        return f"IntervalSet({{{inner}}})"

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def contains(self, t: Number) -> bool:
        """True iff some member interval contains timestamp ``t``."""
        return any(iv.contains(t) for iv in self._intervals)

    def total_duration(self) -> Number:
        """Sum of member durations."""
        return sum(iv.duration for iv in self._intervals)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """Pointwise intersection of two disjoint-interval sets.

        A linear merge over the two sorted sequences, so the cost is
        ``O(len(self) + len(other))``.
        """
        out: List[Interval] = []
        i, j = 0, 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            hit = a[i].intersect(b[j])
            if hit is not None:
                out.append(hit)
            if a[i].hi <= b[j].hi:
                i += 1
            else:
                j += 1
        return IntervalSet(out)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Coalesced union of the two sets."""
        return IntervalSet(list(self._intervals) + list(other._intervals))

    def shrink(self, amount: Number) -> "IntervalSet":
        """Shrink each member inward, dropping the ones that vanish."""
        kept = []
        for iv in self._intervals:
            shrunk = iv.shrink(amount)
            if shrunk is not None:
                kept.append(shrunk)
        return IntervalSet(kept)

    def filter_durable(self, tau: Number) -> "IntervalSet":
        """Keep only member intervals with duration ≥ ``tau``."""
        return IntervalSet(iv for iv in self._intervals if iv.duration >= tau)

    @property
    def span(self) -> Optional[Interval]:
        """Smallest single interval covering the whole set (None if empty)."""
        if not self._intervals:
            return None
        return Interval(self._intervals[0].lo, self._intervals[-1].hi)


def coalesce(intervals: Sequence[IntervalLike]) -> List[Interval]:
    """Convenience: coalesce a sequence of interval-likes into a sorted list."""
    return list(IntervalSet(intervals))
