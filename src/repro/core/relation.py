"""Temporal relations: named schemas over tuples with valid intervals.

A :class:`TemporalRelation` is the paper's ``R_e``: a set of distinct tuples
over the attributes of hyperedge ``e``, each carrying a valid interval
(Section 2.1). Rows are stored as ``(values, Interval)`` pairs where
``values`` is a plain tuple aligned with the relation's attribute order —
cheap to hash, project, and group.

The class provides exactly the primitives the algorithms need: projection,
selection, grouping by a key, semijoins, interval shrinking (for τ-durable
joins), and schema validation. It deliberately does *not* try to be a full
relational engine; multi-way joins live in :mod:`repro.algorithms` and
:mod:`repro.nontemporal`.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .errors import SchemaError
from .interval import Interval, IntervalLike, Number

Values = Tuple[object, ...]
Row = Tuple[Values, Interval]


class TemporalRelation:
    """A temporal relation ``R_e`` with attributes ``attrs``.

    Parameters
    ----------
    name:
        Relation name; used to bind the relation to a query hyperedge.
    attrs:
        Ordered attribute names. Order fixes the layout of each row's
        value tuple.
    rows:
        Iterable of ``(values, interval)`` pairs. ``interval`` accepts
        anything :meth:`Interval.coerce` understands; omit it by passing
        2-tuples of ``(values, None)`` is *not* allowed — non-temporal rows
        should use :meth:`Interval.always`.
    check_distinct:
        When true (default), raise :class:`SchemaError` on duplicate value
        tuples, enforcing the paper's "all tuples in a relation are
        distinct" assumption. Multi-interval data should instead use
        :func:`repro.core.durability.explode_interval_sets`.
    """

    __slots__ = ("name", "attrs", "_rows", "_positions")

    def __init__(
        self,
        name: str,
        attrs: Sequence[str],
        rows: Iterable[Tuple[Sequence[object], IntervalLike]] = (),
        check_distinct: bool = True,
    ) -> None:
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"relation {name!r} repeats an attribute: {attrs}")
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        self.name = name
        self.attrs: Tuple[str, ...] = tuple(attrs)
        self._positions: Dict[str, int] = {a: i for i, a in enumerate(self.attrs)}
        self._rows: List[Row] = []
        seen = set() if check_distinct else None
        arity = len(self.attrs)
        for values, interval in rows:
            vt = tuple(values)
            if len(vt) != arity:
                raise SchemaError(
                    f"tuple {vt} has arity {len(vt)}, expected {arity} "
                    f"for relation {name!r}{self.attrs}"
                )
            if seen is not None:
                if vt in seen:
                    raise SchemaError(
                        f"duplicate tuple {vt} in relation {name!r}; the model "
                        "requires distinct tuples (use IntervalSet explosion "
                        "for multi-interval data)"
                    )
                seen.add(vt)
            self._rows.append((vt, Interval.coerce(interval)))

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TemporalRelation({self.name!r}, attrs={list(self.attrs)}, "
            f"n={len(self._rows)})"
        )

    @property
    def rows(self) -> List[Row]:
        """The underlying ``(values, interval)`` rows (do not mutate)."""
        return self._rows

    def position(self, attr: str) -> int:
        """Index of ``attr`` inside each row's value tuple."""
        try:
            return self._positions[attr]
        except KeyError:
            raise SchemaError(
                f"attribute {attr!r} not in relation {self.name!r}{self.attrs}"
            ) from None

    def positions(self, attrs: Sequence[str]) -> Tuple[int, ...]:
        """Indexes of several attributes, in the order given."""
        return tuple(self.position(a) for a in attrs)

    # ------------------------------------------------------------------
    # Relational primitives
    # ------------------------------------------------------------------
    def project_values(self, values: Values, attrs: Sequence[str]) -> Values:
        """Project one value tuple of this relation onto ``attrs``."""
        pos = self.positions(attrs)
        return tuple(values[p] for p in pos)

    def project(self, attrs: Sequence[str], name: Optional[str] = None) -> "TemporalRelation":
        """Projection π_attrs with duplicate elimination.

        Duplicate value tuples after projection keep the interval of the
        first occurrence; callers that care about coalescing multiple
        intervals should use :func:`project_multi` instead. Projection of a
        temporal relation is mainly used by the GHD machinery, where the
        paper resets intervals to ``(-inf, +inf)`` anyway (Algorithm 5,
        line 7).
        """
        pos = self.positions(attrs)
        seen: Dict[Values, Interval] = {}
        for values, interval in self._rows:
            key = tuple(values[p] for p in pos)
            if key not in seen:
                seen[key] = interval
        return TemporalRelation(
            name or f"π_{'_'.join(attrs)}({self.name})",
            attrs,
            seen.items(),
        )

    def select(
        self, predicate: Callable[[Values, Interval], bool], name: Optional[str] = None
    ) -> "TemporalRelation":
        """Selection σ_predicate over ``(values, interval)`` rows."""
        return TemporalRelation(
            name or f"σ({self.name})",
            self.attrs,
            ((v, iv) for v, iv in self._rows if predicate(v, iv)),
        )

    def group_by(self, attrs: Sequence[str]) -> Dict[Values, List[Row]]:
        """Group rows by their projection onto ``attrs``.

        This is the grouping primitive behind the §3.2 structure (tuples in
        ``X_u`` grouped by their value over ``V_{p(u)}``) and behind the
        per-key interval joins of the BASELINE algorithm.
        """
        pos = self.positions(attrs)
        groups: Dict[Values, List[Row]] = {}
        for values, interval in self._rows:
            key = tuple(values[p] for p in pos)
            groups.setdefault(key, []).append((values, interval))
        return groups

    def semijoin_keys(
        self, attrs: Sequence[str], keys: Iterable[Values], name: Optional[str] = None
    ) -> "TemporalRelation":
        """Keep rows whose projection onto ``attrs`` appears in ``keys``."""
        key_set = set(keys)
        pos = self.positions(attrs)
        return TemporalRelation(
            name or f"⋉({self.name})",
            self.attrs,
            (
                (v, iv)
                for v, iv in self._rows
                if tuple(v[p] for p in pos) in key_set
            ),
        )

    def shrink(self, amount: Number, name: Optional[str] = None) -> "TemporalRelation":
        """Shrink every interval inward by ``amount``; drop vanished rows.

        This is the per-relation step of the τ-durable reduction: with
        ``amount = τ/2`` the temporal join of the shrunk instance equals
        the τ-durable join of the original (paper §2.1 remarks).
        """
        kept = []
        for values, interval in self._rows:
            shrunk = interval.shrink(amount)
            if shrunk is not None:
                kept.append((values, shrunk))
        return TemporalRelation(name or self.name, self.attrs, kept)

    def map_intervals(
        self,
        fn: Callable[[Interval], Optional[Interval]],
        name: Optional[str] = None,
    ) -> "TemporalRelation":
        """Apply ``fn`` to each interval, dropping rows mapped to ``None``.

        Used by the temporal-predicate reformulations in
        :mod:`repro.core.durability` (lead/lag gaps, relative positioning).
        """
        kept = []
        for values, interval in self._rows:
            mapped = fn(interval)
            if mapped is not None:
                kept.append((values, mapped))
        return TemporalRelation(name or self.name, self.attrs, kept)

    def rename(
        self, mapping: Mapping[str, str], name: Optional[str] = None
    ) -> "TemporalRelation":
        """Rename attributes via ``mapping`` (missing attrs keep their name).

        Self-joins over a single stored table (all the graph-pattern queries
        of Section 6) are expressed by renaming copies of the edge relation.
        """
        new_attrs = [mapping.get(a, a) for a in self.attrs]
        out = TemporalRelation(name or self.name, new_attrs, check_distinct=False)
        out._rows = list(self._rows)
        return out

    def with_name(self, name: str) -> "TemporalRelation":
        """Shallow copy under a different relation name."""
        out = TemporalRelation(name, self.attrs, check_distinct=False)
        out._rows = list(self._rows)
        return out

    # ------------------------------------------------------------------
    # Statistics used by the BASELINE join-order search
    # ------------------------------------------------------------------
    def key_cardinality(self, attrs: Sequence[str]) -> int:
        """Number of distinct values of the projection onto ``attrs``."""
        pos = self.positions(attrs)
        return len({tuple(v[p] for p in pos) for v, _ in self._rows})

    def endpoints(self) -> List[Number]:
        """All interval endpoints, unsorted (the sweep's event times)."""
        out: List[Number] = []
        for _, interval in self._rows:
            out.append(interval.lo)
            out.append(interval.hi)
        return out


def relation_from_pairs(
    name: str,
    attrs: Sequence[str],
    pairs: Iterable[Tuple[Sequence[object], IntervalLike]],
) -> TemporalRelation:
    """Small convenience wrapper mirroring the examples in the paper."""
    return TemporalRelation(name, attrs, pairs)
