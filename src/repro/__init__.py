"""repro — temporal multi-way join processing.

A from-scratch Python implementation of *Computing Complex Temporal Join
Queries Efficiently* (Hu, Sintos, Gao, Agarwal, Yang — SIGMOD 2022):
TIMEFIRST sweeps (hierarchical and GHD-based), the HYBRID and
HYBRID-INTERVAL algorithms, durable temporal joins, the Figure 7 planner,
the pairwise and join-first baselines, and every substrate they stand on
(Yannakakis, GenericJoin, GHD/width machinery, interval joins).

Quickstart
----------
>>> from repro import Interval, JoinQuery, TemporalRelation, temporal_join
>>> q = JoinQuery.line(3)
>>> db = {
...     "R1": TemporalRelation("R1", ("x1", "x2"), [(("A", "B"), (2013, 2017))]),
...     "R2": TemporalRelation("R2", ("x2", "x3"), [(("B", "C"), (2011, 2015))]),
...     "R3": TemporalRelation("R3", ("x3", "x4"), [(("C", "D"), (2012, 2016))]),
... }
>>> [(values, (iv.lo, iv.hi)) for values, iv in temporal_join(q, db)]
[(('A', 'B', 'C', 'D'), (2013, 2015))]
"""

from .algorithms import (
    ExplainAnalyze,
    OnlineTemporalJoin,
    available_algorithms,
    baseline_join,
    binary_temporal_join,
    explain_analyze,
    hybrid_interval_join,
    hybrid_join,
    joinfirst_join,
    naive_join,
    stream_temporal_join,
    temporal_join,
    top_k_durable,
    timefirst_join,
)
from .core import (
    Interval,
    IntervalSet,
    JoinQuery,
    JoinResultSet,
    QueryClass,
    ReproError,
    TemporalRelation,
    classify,
    self_join_database,
    shrink_database,
)
from .core.advisor import Advice, advise
from .core.timeline import Timeline, busiest_instant, result_timeline
from .core.planner import Plan, plan
from .kernels.prepared import PreparedDatabase, prepare, run_batch
from .obs import ExecutionStats

__version__ = "1.0.0"

__all__ = [
    "Advice",
    "advise",
    "ExecutionStats",
    "ExplainAnalyze",
    "explain_analyze",
    "Interval",
    "IntervalSet",
    "JoinQuery",
    "JoinResultSet",
    "Plan",
    "QueryClass",
    "ReproError",
    "TemporalRelation",
    "available_algorithms",
    "baseline_join",
    "binary_temporal_join",
    "classify",
    "hybrid_interval_join",
    "hybrid_join",
    "joinfirst_join",
    "OnlineTemporalJoin",
    "PreparedDatabase",
    "Timeline",
    "busiest_instant",
    "naive_join",
    "plan",
    "prepare",
    "run_batch",
    "self_join_database",
    "shrink_database",
    "result_timeline",
    "stream_temporal_join",
    "temporal_join",
    "top_k_durable",
    "timefirst_join",
]
