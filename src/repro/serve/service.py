"""`TemporalJoinService` — the long-running serving façade.

ROADMAP's serving story made concrete: *one ingest path, N standing
queries*. The service wraps a :class:`~repro.serve.broker.StreamBroker`
with

* **runtime registration** — :meth:`register` / :meth:`deregister` add
  and remove standing queries while the stream runs. Identical query
  templates are deduplicated through the same shape keys the
  prepared-columns engine uses (:func:`~repro.core.planner.plan_signature`
  / :func:`~repro.core.planner.hypergraph_signature`): handles whose
  queries share a hypergraph and τ share one live operator, and
  attribute-order variants receive projections of its rows — the
  streaming analogue of :func:`repro.kernels.prepared.run_batch`'s sweep
  sharing. Figure-7 plans are cached per ``plan_signature`` so a
  template fleet pays the planner once per shape
  (``serve.plan_cache_hits`` / ``serve.plan_cache_misses``).
* **bulk ingest** — :meth:`ingest_database` streams a stored database
  through the broker in one endpoint-ordered pass
  (``serve.ingest_passes``). With ``workers >= 2`` the pass is sharded
  by the parallel executor's endpoint-balanced cuts and *right-endpoint
  ownership* rule (PR 2): every tuple is replicated to the shards its
  interval overlaps, each shard runs fresh per-template operators over
  its sub-stream, and a shard delivers exactly the results whose
  intersection right endpoint it owns — the global delivery is plain
  concatenation in shard order, no dedup.
* **SLO telemetry** — ``serve.*`` counters through the existing
  :mod:`repro.obs` layer: ingest volume and rate, emission event-time
  lag (finalizable point to delivery), active-set size, buffer depths,
  drops and clamps. :meth:`telemetry` folds the per-query stats into
  one report.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..algorithms.online import OnlineTemporalJoin, arrivals_from_database
from ..core.errors import QueryError
from ..core.interval import Interval, IntervalLike, Number
from ..core.planner import Plan, hypergraph_signature, plan, plan_signature
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..obs import ExecutionStats
from .broker import StreamBroker
from .query import Backpressure, Emission, StandingQuery

Values = Tuple[object, ...]
Database = Mapping[str, TemporalRelation]

INGEST_MODES = ("inline", "thread")


def _join_shard(
    shard: int,
    templates: List[Tuple[JoinQuery, Number]],
    sub_stream: List[Tuple[str, Values, Interval]],
    partition,
) -> List[List[Emission]]:
    """Join one shard's sub-stream for every ``(query, τ/2)`` template.

    Module-level (not a closure) so the payload stays spawn-safe: the
    thread-pool path doesn't pickle, but a future process-pool mode
    would, and the analyzer's spawn-safety gate holds either way.

    Returns, per template, the emissions whose expanded right endpoint
    this shard owns — the PR-2 ownership rule that makes concatenation
    across shards exactly-once.
    """
    out: List[List[Emission]] = []
    for query, half in templates:
        op = OnlineTemporalJoin(query, strict=True)
        relations = frozenset(query.edge_names)
        for relation, values, iv in sub_stream:
            if relation not in relations:
                continue
            run_iv = iv if not half else iv.shrink(half)
            if run_iv is None:
                continue
            op.insert(relation, values, run_iv)
        op.finish()
        owned: List[Emission] = []
        for values, iv in op.results():
            out_iv = iv.expand(half) if half else iv
            if partition.owner(out_iv.hi) != shard:
                continue
            # Finalized at its expanded right endpoint; minimal latency
            # by construction of the one-pass operator.
            owned.append(Emission(values, out_iv, out_iv.hi))
        out.append(owned)
    return out


class TemporalJoinService:
    """Standing-query streaming service over one shared temporal ingest path.

    Parameters
    ----------
    strict:
        Ordering contract for the ingest path (see
        :class:`~repro.serve.broker.StreamBroker`).
    stats:
        Optional service-wide :class:`ExecutionStats`; a fresh one is
        created when omitted and exposed as :attr:`stats`.
    """

    def __init__(
        self,
        strict: bool = True,
        stats: Optional[ExecutionStats] = None,
        plan_cache=None,
    ) -> None:
        self.stats = stats if stats is not None else ExecutionStats()
        self.broker = StreamBroker(strict=strict, stats=self.stats)
        self._handles: Dict[str, Tuple[Tuple, StandingQuery]] = {}
        self._plans: Dict[Tuple, Plan] = {}
        #: Optional persistent :class:`repro.core.plancache.PlanCache`
        #: (or directory path) behind the in-memory template dedup, so a
        #: restarted service re-registers its fleet without re-searching.
        self.plan_cache = plan_cache
        self._names = itertools.count(1)
        self._ingest_started = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TemporalJoinService(queries={len(self._handles)}, "
            f"watermark={self.broker.watermark!r})"
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        query: JoinQuery,
        tau: Number = 0,
        name: Optional[str] = None,
        policy: str = Backpressure.BLOCK,
        buffer_size: int = 1024,
        block_timeout: Optional[Number] = 30.0,
        retain_results: bool = True,
    ) -> StandingQuery:
        """Register a standing query; returns its consumer handle.

        May be called at any time, including mid-stream — a template
        registered after ingest began sees only arrivals from the
        current watermark on. Identical templates (same hypergraph, same
        τ) share one live operator; the handle still gets its own
        buffer, policy, and telemetry.
        """
        from ..algorithms.registry import _check_tau

        _check_tau(tau)
        if name is None:
            name = f"q{next(self._names)}"
        if name in self._handles:
            raise QueryError(f"standing query name {name!r} is already registered")
        sig = plan_signature(query)
        if sig in self._plans:
            self.stats.incr("serve.plan_cache_hits")
        else:
            self.stats.incr("serve.plan_cache_misses")
            self._plans[sig] = plan(
                query, cache=self.plan_cache, stats=self.stats
            )
        handle = StandingQuery(
            name,
            query,
            tau,
            policy=policy,
            buffer_size=buffer_size,
            block_timeout=block_timeout,
            retain_results=retain_results,
        )
        key = (hypergraph_signature(query), tau)
        created = self.broker.attach(key, query, tau, handle)
        self._handles[name] = (key, handle)
        self.stats.incr("serve.registered")
        if not created:
            self.stats.incr("serve.template_dedup")
        self.stats.peak("serve.queries_peak", len(self._handles))
        return handle

    def deregister(self, handle_or_name) -> None:
        """Remove a standing query; its template's operator dies with the
        last handle attached to it."""
        name = (
            handle_or_name.name
            if isinstance(handle_or_name, StandingQuery)
            else handle_or_name
        )
        entry = self._handles.pop(name, None)
        if entry is None:
            raise QueryError(f"standing query {name!r} is not registered")
        key, handle = entry
        self.broker.detach(key, handle)
        handle._close()
        self.stats.incr("serve.deregistered")

    def plan_for(self, handle_or_name) -> Plan:
        """The cached Figure-7 plan of a registered query's template."""
        name = (
            handle_or_name.name
            if isinstance(handle_or_name, StandingQuery)
            else handle_or_name
        )
        entry = self._handles.get(name)
        if entry is None:
            raise QueryError(f"standing query {name!r} is not registered")
        return self._plans[plan_signature(entry[1].query)]

    @property
    def queries(self) -> List[StandingQuery]:
        return [handle for _, handle in self._handles.values()]

    @property
    def watermark(self) -> Optional[Number]:
        return self.broker.watermark

    # ------------------------------------------------------------------
    # Streaming ingest (delegates to the broker)
    # ------------------------------------------------------------------
    def append(self, relation: str, values: Values, interval: IntervalLike) -> int:
        """Ingest one tuple now; returns the emissions it finalized."""
        self._ingest_started = True
        with self.stats.timer("phase.serve.ingest"):
            return self.broker.append(relation, values, interval)

    def advance_to(self, watermark: Number) -> int:
        """Advance every standing query's expiry to ``watermark``."""
        with self.stats.timer("phase.serve.ingest"):
            return self.broker.advance_to(watermark)

    def finish(self) -> int:
        """Flush all standing queries and close the ingest path."""
        with self.stats.timer("phase.serve.ingest"):
            return self.broker.finish()

    # ------------------------------------------------------------------
    # Bulk ingest: one pass, optionally sharded across workers
    # ------------------------------------------------------------------
    def ingest_database(
        self,
        database: Database,
        workers: int = 1,
        mode: str = "thread",
        finish: bool = True,
    ) -> int:
        """Stream a stored database through the service in one pass.

        ``workers=1`` replays the endpoint-ordered arrival stream through
        the live broker (the stream may be left open with
        ``finish=False``). ``workers >= 2`` is the batch load path: the
        timeline is cut into endpoint-balanced windows, every window's
        sub-stream is joined by fresh per-template operators (``mode=
        "thread"`` runs them on a thread pool, ``"inline"`` sequentially)
        and each shard delivers exactly the results whose right endpoint
        it owns; it always finishes the stream, because the sharded
        operators — not the broker's live ones — absorbed the data.

        Returns the number of emissions delivered. Counts one
        ``serve.ingest_passes`` regardless of ``workers`` — the whole
        point is that N standing queries share a single pass.
        """
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers!r}")
        if mode not in INGEST_MODES:
            raise QueryError(
                f"unknown ingest mode {mode!r}; expected one of {INGEST_MODES}"
            )
        if self.broker.closed:
            raise QueryError("ingest_database after finish() on the service")
        self.stats.incr("serve.ingest_passes")
        started = time.perf_counter()
        if workers == 1:
            delivered = 0
            for relation, values, interval in arrivals_from_database(database):
                delivered += self.append(relation, values, interval)
            if finish:
                delivered += self.finish()
        else:
            if self._ingest_started:
                raise QueryError(
                    "sharded ingest (workers >= 2) requires a fresh stream; "
                    "tuples were already appended to this service"
                )
            self._ingest_started = True
            with self.stats.timer("phase.serve.ingest"):
                delivered = self._ingest_sharded(database, workers, mode)
        self.stats.add_time("phase.serve.pass", time.perf_counter() - started)
        return delivered

    def _ingest_sharded(self, database: Database, workers: int, mode: str) -> int:
        """One ingest pass sharded by right-endpoint ownership (PR-2 rule).

        Tuple assignment replicates each arrival to every shard whose
        window its interval overlaps; a result — finalized at the right
        endpoint of its intersection interval — is delivered by the
        unique shard owning that instant, so concatenating shard
        deliveries in shard order is exactly-once by construction.
        """
        from ..parallel.partition import partition_timeline

        partition = partition_timeline(database, workers)
        shards = partition.n_shards
        arrivals = arrivals_from_database(database)
        evaluations = self.broker.evaluations
        sub_streams: List[List[Tuple[str, Values, Interval]]] = [
            [] for _ in range(shards)
        ]
        for item in arrivals:
            first, last = partition.shard_range(item[2])
            for shard in range(first, last + 1):
                sub_streams[shard].append(item)
        replicated = sum(len(s) for s in sub_streams) - len(arrivals)
        self.stats.incr("serve.shards", shards)
        self.stats.incr("serve.shard_workers", min(workers, shards))
        self.stats.incr("serve.replicated", replicated)

        templates = [(e.query, e.half) for e in evaluations]
        if mode == "thread" and shards > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=min(workers, shards)) as pool:
                futures = [
                    pool.submit(
                        _join_shard, shard, templates,
                        sub_streams[shard], partition,
                    )
                    for shard in range(shards)
                ]
                per_shard = [future.result() for future in futures]
        else:
            per_shard = [
                _join_shard(shard, templates, sub_streams[shard], partition)
                for shard in range(shards)
            ]

        # Deliver in shard order from the calling thread: deterministic,
        # and buffer backpressure applies on delivery exactly as in the
        # streaming path.
        delivered = 0
        for shard_out in per_shard:
            for evaluation, emissions in zip(evaluations, shard_out):
                for handle in evaluation.handles:
                    projection = evaluation.projection(handle.query)
                    if projection is None:
                        handle._deliver(emissions, None)
                    else:
                        handle._deliver(
                            [
                                Emission(
                                    tuple(e.values[p] for p in projection),
                                    e.interval,
                                    e.at,
                                )
                                for e in emissions
                            ],
                            None,
                        )
                    delivered += len(emissions)
                self.stats.incr("serve.results_emitted", len(emissions))
        # The sharded operators absorbed the stream; the live broker never
        # saw it, so the only consistent continuation is closure.
        self.broker.finish()
        return delivered

    def ingest_stream(
        self,
        arrivals: Iterable[Tuple[str, Values, IntervalLike]],
        finish: bool = False,
    ) -> int:
        """Append a pre-ordered arrival stream through the live broker."""
        delivered = 0
        for relation, values, interval in arrivals:
            delivered += self.append(relation, values, interval)
        if finish:
            delivered += self.finish()
        return delivered

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def telemetry(self) -> ExecutionStats:
        """Service stats with every standing query's stats folded in."""
        merged = ExecutionStats()
        merged.merge(self.stats)
        for handle in self.queries:
            merged.merge(handle.stats)
        return merged

    def slo_report(self) -> str:
        """Human-readable per-query SLO summary (counts, lag, depth)."""
        lines = [
            f"{'query':<12} {'template':<22} {'tau':>5} {'delivered':>9} "
            f"{'lag.max':>7} {'depth.peak':>10} {'dropped':>7}"
        ]
        for handle in sorted(self.queries, key=lambda h: h.name):
            stats = handle.stats
            template = ",".join(sorted(handle.query.edge_names))
            lines.append(
                f"{handle.name:<12} {template:<22} {handle.tau:>5g} "
                f"{handle.delivered:>9} "
                f"{stats.get('serve.emit_lag.max'):>7} "
                f"{stats.get('serve.buffer_depth_peak'):>10} "
                f"{stats.get('serve.dropped'):>7}"
            )
        ingest = self.stats.timers.get("phase.serve.ingest", 0.0)
        appends = self.stats.get("serve.appends")
        if ingest > 0 and appends:
            lines.append(
                f"ingest: {appends} tuples in {ingest * 1e3:.1f} ms "
                f"({appends / ingest:,.0f} tuples/s)"
            )
        return "\n".join(lines)
