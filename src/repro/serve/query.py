"""Standing-query handles: subscriptions, bounded buffers, snapshots.

A :class:`StandingQuery` is the consumer-facing end of one registered
query in the serving layer. The broker pushes finalized results into it;
consumers take them out through either

* **subscriptions** — callbacks invoked synchronously on the ingest
  thread at delivery time (push mode), or
* **the pull iterator** — :meth:`poll` / :meth:`drain` / iteration over
  the handle, backed by a bounded buffer (pull mode).

The buffer is bounded and its overflow behaviour is an explicit
:class:`Backpressure` policy, chosen at registration:

* ``BLOCK`` — the ingest path waits until a consumer makes room (the
  classic backpressure; a ``block_timeout`` turns starvation into a
  :class:`~repro.core.errors.QueryError` instead of a deadlock);
* ``DROP_OLDEST`` — the oldest undelivered emission is discarded and
  counted (``serve.dropped``), never silently;
* ``ERROR`` — overflow raises immediately, failing the ingest call.

Independently of buffer consumption, the handle retains every finalized
row (``retain_results=True``, the default) so :meth:`snapshot` can serve
a *consistent read at a watermark*: all results finalized at or before
the handle's current watermark, exactly once, regardless of which
emissions were dropped or already consumed. Long-running services that
never snapshot can disable retention to keep the handle's memory bounded
by the buffer alone.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterator, List, Optional, Tuple

from ..core.errors import QueryError
from ..core.interval import Interval, Number
from ..core.query import JoinQuery
from ..core.result import JoinResultSet
from ..obs import ExecutionStats

Values = Tuple[object, ...]


class Backpressure:
    """The three buffer-overflow policies (plain strings, compared as such)."""

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"
    ERROR = "error"

    ALL = (BLOCK, DROP_OLDEST, ERROR)

    @classmethod
    def check(cls, policy: str) -> str:
        if policy not in cls.ALL:
            raise QueryError(
                f"unknown backpressure policy {policy!r}; expected one of {cls.ALL}"
            )
        return policy


@dataclass(frozen=True)
class Emission:
    """One delivered result: the row plus its delivery event time.

    ``at`` is the broker event time (original, un-shrunk timeline) that
    triggered the delivery — the first arrival start or declared
    watermark strictly past the result's right endpoint, or the right
    endpoint itself for end-of-stream flushes. ``at - interval.hi`` is
    therefore the emission's event-time lag; zero lag means the result
    left the operator at its minimal right endpoint.
    """

    values: Values
    interval: Interval
    at: Number

    @property
    def row(self) -> Tuple[Values, Interval]:
        return (self.values, self.interval)

    @property
    def lag(self) -> Number:
        return self.at - self.interval.hi


@dataclass(frozen=True)
class Snapshot:
    """A consistent read: every result finalized at watermark ``at``."""

    at: Optional[Number]
    results: JoinResultSet

    def __len__(self) -> int:
        return len(self.results)


class StandingQuery:
    """One registered query's consumer handle (created by the service).

    Not constructed directly — use
    :meth:`repro.serve.TemporalJoinService.register`.
    """

    def __init__(
        self,
        name: str,
        query: JoinQuery,
        tau: Number,
        policy: str = Backpressure.BLOCK,
        buffer_size: int = 1024,
        block_timeout: Optional[Number] = 30.0,
        retain_results: bool = True,
    ) -> None:
        if buffer_size < 1:
            raise QueryError(f"buffer_size must be >= 1, got {buffer_size}")
        self.name = name
        self.query = query
        self.tau = tau
        self.policy = Backpressure.check(policy)
        self.buffer_size = buffer_size
        self.block_timeout = block_timeout
        self.stats = ExecutionStats()
        self._buffer: Deque[Emission] = deque()
        self._cond = threading.Condition()
        self._subscribers: List[Callable[[Emission], None]] = []
        self._retained: Optional[JoinResultSet] = (
            JoinResultSet(query.attrs) if retain_results else None
        )
        self._watermark: Optional[Number] = None
        self._delivered = 0
        self._closed = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StandingQuery({self.name!r}, tau={self.tau}, "
            f"policy={self.policy!r}, pending={self.pending})"
        )

    # ------------------------------------------------------------------
    # Consumer API
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> Optional[Number]:
        """Largest settled instant this handle has been advanced to."""
        return self._watermark

    @property
    def pending(self) -> int:
        """Emissions currently buffered and not yet consumed."""
        with self._cond:
            return len(self._buffer)

    @property
    def delivered(self) -> int:
        """Total emissions delivered to this handle so far."""
        return self._delivered

    @property
    def closed(self) -> bool:
        return self._closed

    def subscribe(self, callback: Callable[[Emission], None]) -> None:
        """Push mode: invoke ``callback`` for every future emission.

        Subscribed handles bypass the buffer entirely — the callback runs
        synchronously on the ingest path, so its cost is the query's SLO.
        """
        self._subscribers.append(callback)

    def poll(self, timeout: Optional[Number] = 0) -> Optional[Emission]:
        """Take the oldest buffered emission, or ``None`` if none arrives.

        ``timeout=0`` (default) never blocks; ``timeout=None`` waits until
        an emission arrives or the query closes.
        """
        with self._cond:
            while not self._buffer:
                if self._closed or timeout == 0:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None
            emission = self._buffer.popleft()
            self._cond.notify_all()
            return emission

    def drain(self) -> List[Emission]:
        """Take every buffered emission at once (never blocks)."""
        with self._cond:
            out = list(self._buffer)
            self._buffer.clear()
            self._cond.notify_all()
            return out

    def __iter__(self) -> Iterator[Emission]:
        """Iterate emissions until the query closes and the buffer empties."""
        while True:
            emission = self.poll(timeout=None)
            if emission is None:
                if self._closed and not self._buffer:
                    return
                continue
            yield emission

    def snapshot(self) -> Snapshot:
        """Consistent read at the current watermark.

        Returns *all* results finalized so far — independent of buffer
        consumption and of any ``drop-oldest`` losses — with the
        watermark they are consistent at. Requires ``retain_results``.
        """
        if self._retained is None:
            raise QueryError(
                f"standing query {self.name!r} was registered with "
                "retain_results=False; snapshot reads are unavailable"
            )
        with self._cond:
            return Snapshot(
                self._watermark,
                JoinResultSet(self._retained.attrs, list(self._retained.rows)),
            )

    # ------------------------------------------------------------------
    # Producer API (the broker side)
    # ------------------------------------------------------------------
    def _deliver(self, emissions: List[Emission], watermark: Optional[Number]) -> None:
        """Deliver finalized rows; apply the backpressure policy."""
        stats = self.stats
        for emission in emissions:
            if self._retained is not None:
                self._retained.append(emission.values, emission.interval)
            self._delivered += 1
            stats.incr("serve.results_delivered")
            lag = emission.lag
            stats.observe("serve.emit_lag", lag if lag == lag else 0)
        if watermark is not None and (
            self._watermark is None or watermark > self._watermark
        ):
            self._watermark = watermark
        if self._subscribers:
            for emission in emissions:
                for callback in self._subscribers:
                    callback(emission)
            return
        if not emissions:
            return
        with self._cond:
            for emission in emissions:
                while len(self._buffer) >= self.buffer_size:
                    if self.policy == Backpressure.DROP_OLDEST:
                        self._buffer.popleft()
                        stats.incr("serve.dropped")
                        stats.note(
                            "serve.backpressure",
                            f"drop-oldest discarded emissions on {self.name!r} "
                            f"(buffer_size={self.buffer_size})",
                        )
                    elif self.policy == Backpressure.ERROR:
                        raise QueryError(
                            f"standing query {self.name!r} buffer overflow "
                            f"({self.buffer_size} emissions pending; policy=error)"
                        )
                    else:  # BLOCK: wait for a consumer to make room
                        if not self._cond.wait(timeout=self.block_timeout):
                            raise QueryError(
                                f"standing query {self.name!r} backpressure "
                                f"timeout after {self.block_timeout}s "
                                f"(buffer full, no consumer progress)"
                            )
                self._buffer.append(emission)
                stats.peak("serve.buffer_depth_peak", len(self._buffer))
            self._cond.notify_all()

    def _close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
