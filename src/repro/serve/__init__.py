"""Serving layer: standing temporal join queries over one shared ingest path.

The §3.1 "dynamic instance of natural join" promoted from a library class
(:class:`~repro.algorithms.online.OnlineTemporalJoin`) into a
long-running service:

* :class:`StreamBroker` — the single ingest path: continuous per-relation
  tuple appends, watermark-driven per-query expiry, fan-out to every
  registered template;
* :class:`StandingQuery` — a registered query's consumer handle: result
  subscriptions (callback and pull-iterator), a bounded buffer with an
  explicit :class:`Backpressure` policy, consistent :meth:`snapshot
  <StandingQuery.snapshot>` reads at a watermark;
* :class:`TemporalJoinService` — the façade: runtime register/deregister
  with template dedup through the planner's shape signatures, bulk
  ingest (optionally sharded across workers by the PR-2 right-endpoint
  ownership rule), and per-query SLO telemetry (``serve.*`` counters).

Quickstart
----------
>>> from repro import JoinQuery
>>> from repro.serve import TemporalJoinService
>>> svc = TemporalJoinService()
>>> pairs = svc.register(JoinQuery.star(2), name="pairs")
>>> svc.append("R1", (1, "h"), (0, 10))
0
>>> svc.append("R2", (2, "h"), (2, 5))
0
>>> svc.advance_to(6)  # no arrival will start before t=6
1
>>> [e.row for e in pairs.drain()]
[((1, 'h', 2), [2, 5])]
"""

from .broker import StreamBroker
from .query import Backpressure, Emission, Snapshot, StandingQuery
from .service import TemporalJoinService

__all__ = [
    "Backpressure",
    "Emission",
    "Snapshot",
    "StandingQuery",
    "StreamBroker",
    "TemporalJoinService",
]
