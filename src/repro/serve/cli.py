"""``python -m repro serve`` — drive the standing-query service from the shell.

Builds one of the paper's workloads (or an ad-hoc query), registers a
small standing-query fleet over it — the primary template, a
sub-template sharing its relations, and a duplicate of the primary to
exercise template dedup — then streams the stored database through the
service in a single shared ingest pass and prints the per-query SLO
report. A zero-setup tour of :mod:`repro.serve`, the streaming analogue
of the offline demo in :mod:`repro.__main__`.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence, Tuple

from ..core.errors import ReproError
from ..core.query import JoinQuery, self_join_database
from ..serve import Backpressure, TemporalJoinService

Fleet = List[Tuple[str, JoinQuery, float]]


def _tpce_workload(n: int, tau: float):
    from ..workloads import tpce

    tau = 170.0 if tau is None else tau
    config = tpce.TPCEConfig(
        n_customers=max(40, n // 6), n_securities=max(12, n // 40),
        hot_securities=max(3, n // 200), n_holdings=n, seed=170,
    )
    database = tpce.star_database(tpce.generate_holdings(config), 3)
    fleet = [
        ("star3", tpce.star_query(3), tau),
        ("star2", tpce.star_query(2), tau),
        ("star3-dup", tpce.star_query(3), tau),
    ]
    return f"TPC-E star self-join (tau={tau:g})", database, fleet


def _ldbc_workload(n: int, tau: float):
    from ..workloads import ldbc

    tau = 11.0 if tau is None else tau
    config = ldbc.LDBCConfig(n_persons=max(40, n // 5), n_knows=n // 2, seed=11)
    database = self_join_database(JoinQuery.line(3), ldbc.knows_relation(config))
    fleet = [
        ("line3", JoinQuery.line(3), tau),
        ("line2", JoinQuery({"R1": ("x1", "x2"), "R2": ("x2", "x3")}), tau),
        ("line3-dup", JoinQuery.line(3), tau),
    ]
    return f"LDBC-SNB knows 3-chain (tau={tau:g})", database, fleet


def _synthetic_workload(n: int, tau: float):
    from ..workloads.synthetic import SyntheticConfig, generate

    tau = 0.0 if tau is None else tau
    query = JoinQuery.line(3)
    database = generate(
        query, SyntheticConfig(n_dangling=max(10, n // 4), n_results=40)
    )
    fleet = [
        ("line3", query, tau),
        ("line2", JoinQuery({"R1": ("x1", "x2"), "R2": ("x2", "x3")}), tau),
        ("line3-dup", query, tau),
    ]
    return f"synthetic line3 (tau={tau:g})", database, fleet


WORKLOADS = {
    "ldbc": _ldbc_workload,
    "tpce": _tpce_workload,
    "synthetic": _synthetic_workload,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Standing-query streaming service demo "
                    "(one shared ingest pass, N standing queries)",
    )
    parser.add_argument(
        "workload", nargs="?", default="ldbc", choices=sorted(WORKLOADS),
        help="workload to stream (default: ldbc)",
    )
    parser.add_argument("--n", type=int, default=600,
                        help="workload size knob (default 600)")
    parser.add_argument("--tau", type=float, default=None,
                        help="durability threshold (default: the workload's "
                             "paper value — 11 for ldbc, 170 for tpce)")
    parser.add_argument("--workers", type=int, default=1, metavar="P",
                        help="shard the ingest pass across P workers by the "
                             "right-endpoint ownership rule (default 1: "
                             "stream through the live broker)")
    parser.add_argument("--policy", default=Backpressure.DROP_OLDEST,
                        choices=Backpressure.ALL,
                        help="buffer backpressure policy for the fleet "
                             "(default drop-oldest; the demo has no "
                             "concurrent consumer)")
    parser.add_argument("--buffer-size", type=int, default=1024)
    parser.add_argument("--verify", action="store_true",
                        help="cross-check every snapshot against the "
                             "offline temporal_join")
    parser.add_argument("--stats", action="store_true",
                        help="print the merged serve.* telemetry")
    parser.add_argument("--plan-cache", default=None, metavar="DIR",
                        help="persistent plan-cache directory backing the "
                             "fleet's template dedup (created on first use)")
    args = parser.parse_args(argv)

    try:
        label, database, fleet = WORKLOADS[args.workload](args.n, args.tau)
    except ReproError as exc:
        parser.error(str(exc))

    from ..core.planner import hypergraph_signature

    n = sum(len(rel) for rel in database.values())
    templates = {hypergraph_signature(q) for _, q, _ in fleet}
    print(f"Workload: {label}, N = {n} tuples")
    print(f"Fleet: {len(fleet)} standing queries over {len(templates)} "
          "distinct templates, one shared ingest pass")
    print()

    service = TemporalJoinService(plan_cache=args.plan_cache)
    handles = []
    for name, query, tau in fleet:
        handles.append(
            service.register(
                query, tau=tau, name=name,
                policy=args.policy, buffer_size=args.buffer_size,
            )
        )
    service.ingest_database(database, workers=args.workers)

    print("Per-query SLO report")
    print("-" * 40)
    print(service.slo_report())

    if args.verify:
        from ..algorithms.registry import temporal_join

        print()
        print("Offline cross-check")
        print("-" * 40)
        failures = 0
        for handle, (_, query, tau) in zip(handles, fleet):
            sub = {name: database[name] for name in query.edge_names}
            offline = temporal_join(query, sub, tau=tau)
            served = handle.snapshot().results
            ok = served.normalized() == offline.normalized()
            failures += not ok
            print(f"{handle.name:>12}: {len(served):>7} served vs "
                  f"{len(offline):>7} offline  {'ok' if ok else 'MISMATCH'}")
        if failures:
            return 1

    if args.stats:
        print()
        print("Telemetry (service + per-query, merged)")
        print("-" * 40)
        print(service.telemetry().render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
