"""The shared ingest path: one arrival stream, N standing queries.

:class:`StreamBroker` owns the single entry point tuples take into the
serving layer. Each :meth:`append` is fanned out to every registered
*evaluation* — one per distinct ``(hypergraph, τ)`` template, holding a
live :class:`~repro.algorithms.online.OnlineTemporalJoin` — and every
result an arrival or watermark finalizes is delivered to the template's
attached :class:`~repro.serve.query.StandingQuery` handles immediately,
projected into each handle's output attribute order.

τ-durability is folded into the ingest itself, reusing the offline τ/2
reduction (§2 of the paper): a τ-template's operator receives arrivals
shrunk by τ/2 (tuples whose interval vanishes never enter the state) and
its emissions are expanded back on delivery. Because the shrink shifts
every start by the same ``+τ/2``, the broker's single arrival order
serves every τ simultaneously, and a broker watermark ``w`` translates
to ``w + τ/2`` on the shrunk timeline.

Ordering is enforced once, here: arrivals must be non-decreasing in
interval start. ``strict=True`` (default) raises on violations;
``strict=False`` clamps the arrival to the broker watermark and records
``serve.clamped`` plus the ``serve.clamp_reason`` note, mirroring the
online operator's own degradation contract — never silent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..algorithms.online import OnlineTemporalJoin
from ..core.errors import QueryError
from ..core.interval import Interval, IntervalLike, Number
from ..core.query import JoinQuery
from ..core.result import ResultRow
from ..obs import ExecutionStats
from .query import Emission, StandingQuery

Values = Tuple[object, ...]


class _Evaluation:
    """One live operator shared by every handle of one (hypergraph, τ)."""

    __slots__ = ("query", "tau", "half", "op", "handles", "relations")

    def __init__(
        self,
        query: JoinQuery,
        tau: Number,
        stats: Optional[ExecutionStats] = None,
    ) -> None:
        self.query = query
        self.tau = tau
        self.half = tau / 2 if tau else 0
        self.op = OnlineTemporalJoin(query, strict=True, stats=stats)
        self.handles: List[StandingQuery] = []
        self.relations = frozenset(query.edge_names)

    def projection(self, handle_query: JoinQuery) -> Optional[Tuple[int, ...]]:
        """Column permutation from the canonical attrs to the handle's."""
        if tuple(handle_query.attrs) == tuple(self.query.attrs):
            return None
        return tuple(self.query.attrs.index(a) for a in handle_query.attrs)


class StreamBroker:
    """Continuous tuple ingest with per-template fan-out and expiry.

    Constructed by :class:`~repro.serve.service.TemporalJoinService`;
    drive it through the service façade unless you are building your own
    serving loop.
    """

    def __init__(
        self,
        strict: bool = True,
        stats: Optional[ExecutionStats] = None,
    ) -> None:
        self.strict = strict
        self.stats = stats if stats is not None else ExecutionStats()
        self._evaluations: Dict[Tuple, _Evaluation] = {}
        # relation name -> (attribute tuple, #evaluations reading it):
        # one shared stream means one schema per relation name.
        self._schemas: Dict[str, Tuple[Tuple[str, ...], int]] = {}
        self._watermark: Optional[Number] = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def watermark(self) -> Optional[Number]:
        """Largest settled instant on the original (un-shrunk) timeline."""
        return self._watermark

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def active_size(self) -> int:
        """Live tuples across all evaluation operators (SLO: state size)."""
        return sum(e.op.active_count for e in self._evaluations.values())

    @property
    def evaluations(self) -> List[_Evaluation]:
        return list(self._evaluations.values())

    # ------------------------------------------------------------------
    # Registration (service-internal)
    # ------------------------------------------------------------------
    def attach(
        self, key: Tuple, query: JoinQuery, tau: Number, handle: StandingQuery
    ) -> bool:
        """Attach ``handle``; returns True when a new evaluation was born."""
        evaluation = self._evaluations.get(key)
        created = evaluation is None
        if created:
            for name in query.edge_names:
                attrs = tuple(query.edge(name))
                known = self._schemas.get(name)
                if known is not None and known[0] != attrs:
                    raise QueryError(
                        f"standing query {handle.name!r} binds relation "
                        f"{name!r} to attributes {attrs}, but the shared "
                        f"stream already carries it as {known[0]}"
                    )
            for name in query.edge_names:
                attrs = tuple(query.edge(name))
                known = self._schemas.get(name)
                self._schemas[name] = (attrs, (known[1] + 1) if known else 1)
            evaluation = _Evaluation(query, tau, stats=self.stats)
            # A template registered mid-stream starts at the current
            # watermark: it sees only arrivals from here on.
            if self._watermark is not None:
                evaluation.op.advance_to(self._watermark + evaluation.half)
            self._evaluations[key] = evaluation
        evaluation.handles.append(handle)
        return created

    def detach(self, key: Tuple, handle: StandingQuery) -> bool:
        """Detach ``handle``; returns True when the evaluation died."""
        evaluation = self._evaluations.get(key)
        if evaluation is None or handle not in evaluation.handles:
            raise QueryError(f"standing query {handle.name!r} is not registered")
        evaluation.handles.remove(handle)
        if not evaluation.handles:
            del self._evaluations[key]
            for name in evaluation.query.edge_names:
                attrs, count = self._schemas[name]
                if count <= 1:
                    del self._schemas[name]
                else:
                    self._schemas[name] = (attrs, count - 1)
            return True
        return False

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def append(
        self, relation: str, values: Values, interval: IntervalLike
    ) -> int:
        """Ingest one tuple; returns the number of emissions delivered.

        The arrival is fanned out to every evaluation whose template
        reads ``relation``; results finalized by it (its start proves
        earlier expirations settled) are delivered before returning.
        """
        if self._closed:
            raise QueryError("append after finish() on the stream broker")
        known = self._schemas.get(relation)
        if known is not None and len(values) != len(known[0]):
            raise QueryError(
                f"arity mismatch: relation {relation!r} carries attributes "
                f"{known[0]}, got {len(values)}-tuple {values!r}"
            )
        iv = Interval.coerce(interval)
        stats = self.stats
        if self._watermark is not None and iv.lo < self._watermark:
            if self.strict:
                raise QueryError(
                    f"out-of-order arrival: start {iv.lo} precedes the "
                    f"broker watermark {self._watermark}"
                )
            clamped = Interval(self._watermark, max(self._watermark, iv.hi))
            stats.incr("serve.clamped")
            stats.note(
                "serve.clamp_reason",
                f"out-of-order arrival {relation}{values} {iv} clamped to "
                f"{clamped} at broker watermark {self._watermark}",
            )
            iv = clamped
        self._watermark = iv.lo if self._watermark is None else max(self._watermark, iv.lo)
        stats.incr("serve.appends")
        if known is None:
            # No registered template reads this relation: the append is
            # legal (streams outlive query fleets) but does no work.
            stats.incr("serve.unmatched_appends")
        delivered = 0
        for evaluation in self._evaluations.values():
            if relation not in evaluation.relations:
                continue
            run_iv = iv if not evaluation.half else iv.shrink(evaluation.half)
            if run_iv is None:
                # Shorter than τ: can never appear in a τ-durable result.
                stats.incr("serve.shrink_dropped")
                continue
            stats.incr("serve.fanout_inserts")
            rows = evaluation.op.insert(relation, values, run_iv)
            delivered += self._dispatch(evaluation, rows, trigger=iv.lo)
        stats.peak("serve.active_peak", self.active_size)
        return delivered

    def advance_to(self, watermark: Number) -> int:
        """Declare that no future arrival starts before ``watermark``.

        Drives per-template expiry: every evaluation drains expirations
        strictly below the (τ-translated) watermark and the finalized
        results are delivered. Returns the number of emissions.
        """
        if self._closed:
            raise QueryError("advance_to after finish() on the stream broker")
        if self._watermark is not None and watermark <= self._watermark:
            if watermark < self._watermark:
                self.stats.incr("serve.watermark_regressions")
            return 0
        self._watermark = watermark
        self.stats.incr("serve.watermarks")
        delivered = 0
        for evaluation in self._evaluations.values():
            rows = evaluation.op.advance_to(watermark + evaluation.half)
            delivered += self._dispatch(evaluation, rows, trigger=watermark)
        return delivered

    def finish(self) -> int:
        """Flush every evaluation and close the stream. Idempotent."""
        if self._closed:
            return 0
        self._closed = True
        # Everything is settled once the stream ends: the watermark jumps
        # to +inf and every handle's snapshot becomes complete.
        self._watermark = float("inf")
        delivered = 0
        for evaluation in self._evaluations.values():
            rows = evaluation.op.finish()
            delivered += self._dispatch(evaluation, rows, trigger=None)
        for evaluation in self._evaluations.values():
            for handle in evaluation.handles:
                handle._close()
        return delivered

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        evaluation: _Evaluation,
        rows: List[ResultRow],
        trigger: Optional[Number],
    ) -> int:
        """Expand, project and deliver freshly finalized rows."""
        half = evaluation.half
        watermark = self._watermark
        delivered = 0
        stats = self.stats
        emissions: List[Emission] = []
        if rows:
            with stats.timer("phase.serve.deliver"):
                for values, iv in rows:
                    out_iv = iv.expand(half) if half else iv
                    # End-of-stream flushes carry no event time; their
                    # emissions are stamped at their own right endpoint
                    # (zero lag by construction).
                    at = trigger if trigger is not None else out_iv.hi
                    emissions.append(Emission(values, out_iv, at))
                for handle in evaluation.handles:
                    projection = evaluation.projection(handle.query)
                    if projection is None:
                        handle._deliver(emissions, watermark)
                    else:
                        handle._deliver(
                            [
                                Emission(
                                    tuple(e.values[p] for p in projection),
                                    e.interval,
                                    e.at,
                                )
                                for e in emissions
                            ],
                            watermark,
                        )
                    delivered += len(emissions)
            stats.incr("serve.results_emitted", len(rows))
        else:
            for handle in evaluation.handles:
                handle._deliver([], watermark)
        return delivered
