"""Command-line demo: ``python -m repro [query] [--algorithm NAME] [--tau T]``.

Runs a temporal join of the requested family over a small synthetic
instance, prints the planner's Figure-7 decision, the cost-based
advisor's data-aware ranking, and a timing comparison of every
applicable algorithm. Intended as a zero-setup tour of the library.

``python -m repro serve [...]`` instead drives the standing-query
streaming service (see :mod:`repro.serve.cli`).
"""

from __future__ import annotations

import argparse
import sys
import time

from .algorithms.registry import (
    _check_tau,
    available_algorithms,
    describe_algorithms,
    temporal_join,
)
from .core.advisor import advise
from .core.errors import ReproError
from .core.planner import plan
from .core.query import JoinQuery
from .obs import ExecutionStats
from .workloads.synthetic import SyntheticConfig, generate

FAMILIES = {
    "line2": lambda: JoinQuery.line(2),
    "line3": lambda: JoinQuery.line(3),
    "line4": lambda: JoinQuery.line(4),
    "star3": lambda: JoinQuery.star(3),
    "star4": lambda: JoinQuery.star(4),
    "triangle": JoinQuery.triangle,
    "cycle4": lambda: JoinQuery.cycle(4),
    "bowtie": JoinQuery.bowtie,
}


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        from .serve.cli import main as serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Temporal multi-way join demo (SIGMOD 2022 reproduction)",
    )
    parser.add_argument(
        "query", nargs="?", default="line3", choices=sorted(FAMILIES),
        help="query family to run (default: line3)",
    )
    parser.add_argument(
        "--parse", default=None, metavar="QUERY",
        help="ad-hoc query in paper notation, e.g. 'R1(a,b) ⋈ R2(b,c)' "
             "(overrides the positional family; binary edges only)",
    )
    parser.add_argument("--tau", type=float, default=0.0,
                        help="durability threshold (default 0)")
    parser.add_argument("--dangling", type=int, default=150,
                        help="synthetic dangling tuples per relation")
    parser.add_argument("--results", type=int, default=40,
                        help="synthetic backbone result count")
    parser.add_argument("--algorithm", default=None,
                        help="run only this algorithm (default: all)")
    parser.add_argument("--workers", type=int, default=None, metavar="P",
                        help="run each algorithm across P time shards via "
                             "the parallel engine (default: serial)")
    parser.add_argument("--parallel-mode", default="process",
                        choices=["process", "inline"],
                        help="parallel execution mode: 'process' uses a "
                             "spawn-based pool, 'inline' runs the same "
                             "sharded plan in-process (debugging)")
    parser.add_argument("--prepared", action="store_true",
                        help="prepare the database once (columnar intern/"
                             "rank/sort) and reuse the artifact across all "
                             "runs — the multi-query serving mode")
    parser.add_argument("--predicate", default="overlaps", metavar="PRED",
                        help="interval predicate joining pairs must satisfy: "
                             "'overlaps' (default), another extended Allen "
                             "atom (before, meets, starts, started-by, "
                             "finishes, finished-by, during, contains, "
                             "equals) or an '-or-' union such as "
                             "'overlaps-or-meets'. Non-overlaps predicates "
                             "need a binary query, e.g. the line2 family")
    parser.add_argument("--stats", action="store_true",
                        help="collect execution counters (EXPLAIN ANALYZE "
                             "style) and print them per algorithm")
    parser.add_argument("--plan-cache", default=None, metavar="DIR",
                        help="persistent plan-cache directory: the "
                             "minimum-width decomposition search runs at "
                             "most once per query shape across processes "
                             "(created on first use)")
    parser.add_argument("--planner-budget", type=int, default=None,
                        metavar="N",
                        help="node budget for the exact decomposition "
                             "search; when exhausted the planner degrades "
                             "to the best-found GHD (optimal: no)")
    parser.add_argument("--list", action="store_true",
                        help="describe the registered algorithms and exit")
    args = parser.parse_args(argv)

    if args.list:
        print(describe_algorithms())
        return 0

    try:
        _check_tau(args.tau)
    except ReproError as exc:
        parser.error(str(exc))

    from .algorithms.allen import parse_predicate

    try:
        predicate_atoms = parse_predicate(args.predicate)
    except ReproError as exc:
        parser.error(str(exc))

    if args.parse is not None:
        query = JoinQuery.parse(args.parse)
        for name in query.edge_names:
            if len(query.edge(name)) != 2:
                parser.error(
                    "--parse queries must have binary edges (the synthetic "
                    f"generator's constraint); {name} has {query.edge(name)}"
                )
    else:
        query = FAMILIES[args.query]()
    config = SyntheticConfig(n_dangling=args.dangling, n_results=args.results)
    database = generate(query, config)
    n = query.input_size(database)

    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")

    label = "custom query" if args.parse is not None else args.query
    print(f"Workload: synthetic {label}, N = {n} tuples, tau = {args.tau:g}")
    if predicate_atoms != ("overlaps",):
        print(
            f"Predicate: {args.predicate} (lazy-sweep binary engine; "
            "algorithms without a predicate path report not applicable)"
        )
    if args.workers is not None:
        print(
            f"Parallel: {args.workers} time shards "
            f"({args.parallel_mode} mode, exactly-once merge)"
        )
    print()
    if args.planner_budget is not None and args.planner_budget < 1:
        parser.error(f"--planner-budget must be >= 1, got {args.planner_budget}")

    print("Figure 7 planner decision")
    print("-" * 40)
    print(
        plan(
            query, cache=args.plan_cache, budget=args.planner_budget
        ).explain()
    )
    print()
    print("Cost-based advisor (data-aware, Section 6.3 future work)")
    print("-" * 40)
    print(advise(query, database).explain())
    print()

    algorithms = (
        [args.algorithm]
        if args.algorithm
        else [a for a in available_algorithms() if a != "naive"]
    )
    print("Execution")
    print("-" * 40)
    reference = None
    profiles = []
    run_kwargs = {}
    if args.workers is not None:
        run_kwargs = {"workers": args.workers, "parallel_mode": args.parallel_mode}
    if predicate_atoms != ("overlaps",):
        run_kwargs["predicate"] = args.predicate
    if args.prepared:
        from .kernels.prepared import prepare

        start = time.perf_counter()
        artifact = prepare(database, plan_cache=args.plan_cache)
        print(
            f"Prepared columns: {artifact.columns.n_rows} rows interned, "
            f"ranked and event-sorted once in "
            f"{(time.perf_counter() - start) * 1e3:.1f} ms; kernel-path "
            "algorithms below reuse the artifact"
        )
        print()
        run_kwargs["prepared"] = artifact
    for name in algorithms:
        start = time.perf_counter()
        try:
            result = temporal_join(
                query, database, tau=args.tau, algorithm=name, **run_kwargs
            )
        except ReproError as exc:
            print(f"{name:>16}: not applicable ({exc})")
            continue
        elapsed = time.perf_counter() - start
        status = ""
        if reference is None:
            reference = result.normalized()
        elif result.normalized() != reference:
            status = "  !! RESULT MISMATCH"
        print(f"{name:>16}: {len(result):>8} results in {elapsed * 1e3:9.1f} ms{status}")
        if args.stats:
            stats = ExecutionStats()
            temporal_join(
                query, database, tau=args.tau, algorithm=name,
                stats=stats, **run_kwargs,
            )
            profiles.append((name, stats))

    if profiles:
        print()
        print("Execution counters (separate instrumented run per algorithm)")
        print("-" * 40)
        for name, stats in profiles:
            print(f"[{name}]")
            rendered = stats.render()
            print("\n".join("  " + line for line in rendered.splitlines()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
