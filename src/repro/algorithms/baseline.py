"""BASELINE: pairwise binary temporal joins with join-order selection.

Section 6.1: "One baseline algorithm for general temporal join queries
sequentially picks a pair of relations to join and materializes their join
results as a new relation to be further joined (if applicable, we always
pick the best join order)."

The order search enumerates left-deep orders whose prefixes stay connected
(avoiding accidental Cartesian blow-ups when the query is connected) and
scores them with System-R style cardinality estimates; ties and the
final pick minimize the estimated total intermediate size. Callers can
also force an explicit order, which the ablation bench uses to measure
how much the order search buys.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.durability import shrink_database
from ..core.errors import InvariantError, QueryError
from ..core.interval import Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..nontemporal.hash_join import estimate_join_size
from ..obs import ExecutionStats
from .binary import binary_temporal_join
from .interval_join import DEFAULT_STRATEGY

_MAX_EXHAUSTIVE_EDGES = 7


def choose_join_order(
    query: JoinQuery, database: Mapping[str, TemporalRelation]
) -> List[str]:
    """Estimated-best left-deep join order (connected prefixes preferred)."""
    names = query.edge_names
    if len(names) <= 2:
        return list(names)
    if len(names) <= _MAX_EXHAUSTIVE_EDGES:
        candidates = _connected_orders(query, names)
        best_order: Optional[List[str]] = None
        best_cost = float("inf")
        for order in candidates:
            cost = _estimate_order_cost(query, database, order)
            if cost < best_cost:
                best_cost = cost
                best_order = order
        if best_order is None:
            raise InvariantError(
                "join-order search produced no candidate order for "
                f"{names}: _connected_orders must yield at least one "
                "permutation"
            )
        return best_order
    return _greedy_order(query, database, names)


def _connected_orders(
    query: JoinQuery, names: Sequence[str]
) -> List[List[str]]:
    """All left-deep orders with connected prefixes (or all orders if the
    query itself is disconnected)."""
    hg = query.hypergraph
    attr_sets = {n: set(hg.edge(n)) for n in names}
    connected_query = hg.is_connected()
    out: List[List[str]] = []
    for perm in itertools.permutations(names):
        if connected_query:
            covered = set(attr_sets[perm[0]])
            ok = True
            for name in perm[1:]:
                if not (covered & attr_sets[name]):
                    ok = False
                    break
                covered |= attr_sets[name]
            if not ok:
                continue
        out.append(list(perm))
    return out


def _estimate_order_cost(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    order: Sequence[str],
) -> float:
    """Sum of estimated intermediate sizes along a left-deep order."""
    hg = query.hypergraph
    current_attrs = set(hg.edge(order[0]))
    current_size = float(len(database[order[0]]))
    # distinct counts per attribute for the running intermediate: use the
    # base relation's statistics as a proxy.
    distinct: Dict[str, float] = {}
    for name in order:
        rel = database[name]
        for a in rel.attrs:
            d = float(rel.key_cardinality([a]))
            distinct[a] = max(distinct.get(a, 1.0), d)
    total = 0.0
    for name in order[1:]:
        rel = database[name]
        shared = [a for a in rel.attrs if a in current_attrs]
        size = current_size * float(len(rel))
        for a in shared:
            size /= max(distinct.get(a, 1.0), 1.0)
        total += size
        current_size = max(size, 1.0)
        current_attrs |= set(rel.attrs)
        if total == float("inf"):
            break
    return total


def _greedy_order(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    names: Sequence[str],
) -> List[str]:
    """Greedy smallest-estimated-growth order for large queries."""
    remaining = set(names)
    start = min(remaining, key=lambda n: len(database[n]))
    order = [start]
    remaining.discard(start)
    hg = query.hypergraph
    covered = set(hg.edge(start))
    while remaining:
        connected = [n for n in remaining if covered & set(hg.edge(n))]
        pool = connected or list(remaining)
        nxt = min(pool, key=lambda n: len(database[n]))
        order.append(nxt)
        remaining.discard(nxt)
        covered |= set(hg.edge(nxt))
    return order


def baseline_join(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    order: Optional[Sequence[str]] = None,
    track_intermediates: Optional[List[int]] = None,
    binary_strategy: str = DEFAULT_STRATEGY,
    stats: Optional[ExecutionStats] = None,
) -> JoinResultSet:
    """Pairwise BASELINE evaluation of a τ-durable temporal join.

    ``track_intermediates``, when given a list, receives the materialized
    size after each binary join — the quantity the paper's memory figures
    are about. ``binary_strategy`` picks the per-key interval-join family
    used by every binary join (the paper's BASELINE used the forward
    scan, "experimentally verified as the most efficient"; the default
    is now the lazy sweep, which beat it on the ratio-gated
    ``BENCH_allen.json`` workloads — the ablation bench measures the
    other families).

    ``stats`` opts into telemetry: ``bin.joins`` and the
    ``bin.intermediate_rows`` distribution — each binary join's
    materialized cardinality, the Figure 8 blow-up as a number — plus
    ``phase.order_search`` / ``phase.joins`` timers and ``results``.
    """
    query.validate(database)
    db = shrink_database(database, tau)
    if order is not None:
        join_order = list(order)
    elif stats is None:
        join_order = choose_join_order(query, db)
    else:
        with stats.timer("phase.order_search"):
            join_order = choose_join_order(query, db)
    if sorted(join_order) != sorted(query.edge_names):
        raise QueryError(
            f"join order {join_order} must be a permutation of {query.edge_names}"
        )
    joins_start = time.perf_counter()
    current = db[join_order[0]]
    for name in join_order[1:]:
        current = binary_temporal_join(
            current, db[name], strategy=binary_strategy, stats=stats
        )
        if stats is not None:
            stats.incr("bin.joins")
            stats.observe("bin.intermediate_rows", len(current))
        if track_intermediates is not None:
            track_intermediates.append(len(current))
        if len(current) == 0:
            break
    out = JoinResultSet(query.attrs)
    perm = current.positions(query.attrs) if len(current) else ()
    for values, interval in current:
        out.append(tuple(values[p] for p in perm), interval)
    if stats is not None:
        stats.add_time("phase.joins", time.perf_counter() - joins_start)
        stats.incr("results", len(out))
    return out.expand_intervals(tau / 2 if tau else 0)
