"""Temporal join algorithms: TIMEFIRST, HYBRID, baselines, oracles."""

from .baseline import baseline_join, choose_join_order
from .binary import binary_temporal_join
from .hardness import (
    counterpart_instance,
    nontemporal_counterpart,
    triangle_listing_instance,
    triangles_from_line3_results,
)
from .hybrid import hybrid_join, materialize_bag, select_hybrid_ghd
from .hybrid_interval import hybrid_interval_join
from .interval_join import forward_scan_join, index_nested_join, interval_join, sort_merge_join
from .joinfirst import joinfirst_join
from .naive import naive_join, naive_nontemporal_join
from .online import OnlineTemporalJoin, arrivals_from_database, stream_temporal_join
from .registry import (
    ExplainAnalyze,
    available_algorithms,
    explain_analyze,
    get_algorithm,
    temporal_join,
)
from .timefirst import sweep, timefirst_join
from .topk import durability_histogram, top_k_durable

__all__ = [
    "ExplainAnalyze",
    "available_algorithms",
    "baseline_join",
    "binary_temporal_join",
    "choose_join_order",
    "counterpart_instance",
    "explain_analyze",
    "forward_scan_join",
    "get_algorithm",
    "hybrid_interval_join",
    "hybrid_join",
    "index_nested_join",
    "interval_join",
    "sort_merge_join",
    "joinfirst_join",
    "materialize_bag",
    "OnlineTemporalJoin",
    "arrivals_from_database",
    "durability_histogram",
    "naive_join",
    "naive_nontemporal_join",
    "nontemporal_counterpart",
    "select_hybrid_ghd",
    "stream_temporal_join",
    "sweep",
    "top_k_durable",
    "temporal_join",
    "timefirst_join",
    "triangle_listing_instance",
    "triangles_from_line3_results",
]
