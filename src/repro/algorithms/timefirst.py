"""TIMEFIRST (Algorithm 1): the sweep framework for temporal joins.

The driver is agnostic to the dynamic structure ``D``: any object
implementing :class:`SweepState` can be plugged in. Two states ship with
the library —

* :class:`~repro.algorithms.hierarchical.HierarchicalState` for
  (r-)hierarchical queries (Section 3.2, ``O(N log N + K)``), and
* :class:`~repro.algorithms.generic_state.GenericGHDState` for arbitrary
  queries (Section 3.3, ``O(N^(fhtw+1) + K)``).

The public entry points below also handle the τ-durable reduction (shrink
inputs by τ/2, expand result intervals back) so callers never deal with
the transform directly.
"""

from __future__ import annotations

from typing import Mapping, Optional, Protocol, Tuple

from ..core.durability import shrink_database
from ..core.errors import InvariantError
from ..core.interval import Interval, Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..obs import ExecutionStats
from .events import EXPIRE, INSERT, event_stream

Values = Tuple[object, ...]


class SweepState(Protocol):
    """The dynamic structure ``D`` maintained by the sweep.

    Implementations own their output: ``enumerate_results`` appends every
    temporal join result involving the expiring tuple directly to the
    result set handed to them (avoiding per-call list churn).
    """

    def insert(self, relation: str, values: Values, interval: Interval) -> None:
        """Algorithm 1, line 6."""
        ...

    def enumerate_results(
        self,
        relation: str,
        values: Values,
        interval: Interval,
        out: JoinResultSet,
    ) -> None:
        """Algorithm 1, line 8 — results participated by the expiring tuple."""
        ...

    def delete(self, relation: str, values: Values, interval: Interval) -> None:
        """Algorithm 1, line 9."""
        ...


def sweep(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    state: SweepState,
    stats: Optional[ExecutionStats] = None,
) -> JoinResultSet:
    """Run Algorithm 1 with the supplied dynamic structure.

    The database is assumed already shrunk if a durability threshold
    applies; use :func:`timefirst_join` for the full τ-aware entry point.

    When ``stats`` is given, records ``sweep.events`` (always ``2N``),
    ``sweep.inserts``, ``sweep.enumerate_calls`` (one per expiration),
    ``sweep.active_peak`` (high-water mark of the active set), the final
    ``results`` count, and the ``phase.events`` / ``phase.sweep`` timers.
    With ``stats=None`` the uninstrumented loop below runs unchanged.
    """
    out = JoinResultSet(query.attrs)
    if stats is None:
        for event in event_stream(database):
            if event.kind == INSERT:
                state.insert(event.relation, event.values, event.interval)
            else:
                state.enumerate_results(
                    event.relation, event.values, event.interval, out
                )
                state.delete(event.relation, event.values, event.interval)
        return out

    with stats.timer("phase.events"):
        events = event_stream(database)
    active = peak = inserts = 0
    with stats.timer("phase.sweep"):
        for event in events:
            if event.kind == INSERT:
                inserts += 1
                active += 1
                if active > peak:
                    peak = active
                state.insert(event.relation, event.values, event.interval)
            else:
                state.enumerate_results(
                    event.relation, event.values, event.interval, out
                )
                state.delete(event.relation, event.values, event.interval)
                active -= 1
    stats.incr("sweep.events", len(events))
    stats.incr("sweep.inserts", inserts)
    stats.incr("sweep.enumerate_calls", len(events) - inserts)
    stats.peak("sweep.active_peak", peak)
    stats.incr("results", len(out))
    return out


def timefirst_join(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    state_factory: Optional[object] = None,
    stats: Optional[ExecutionStats] = None,
) -> JoinResultSet:
    """τ-durable temporal join via TIMEFIRST with an auto-selected state.

    Selection follows Section 3: hierarchical queries (after linear-time
    reduction when merely r-hierarchical) use the attribute-tree structure;
    everything else uses the GHD-based generic state.

    ``state_factory`` overrides the choice: a callable
    ``(query, database) -> SweepState``. ``stats`` opts into execution
    telemetry (see :mod:`repro.obs`); it is handed to the sweep and to
    the built-in states, which add their structure-level counters.
    """
    from ..core.classification import reduce_instance
    from .generic_state import GenericGHDState
    from .hierarchical import HierarchicalState

    query.validate(database)
    if stats is None:
        db = shrink_database(database, tau)
    else:
        with stats.timer("phase.shrink"):
            db = shrink_database(database, tau)

    if state_factory is not None:
        run_query, run_db = query, db
        state = state_factory(run_query, run_db)  # type: ignore[operator]
    elif query.is_hierarchical:
        run_query, run_db = query, db
        state = HierarchicalState(run_query, stats=stats)
    elif query.is_r_hierarchical:
        reduced_hg, reduced_db = reduce_instance(query.hypergraph, db)
        run_query = JoinQuery.from_hypergraph(reduced_hg)
        # Keep the original output attribute order: reduction never
        # removes attributes, only edges.
        run_query = JoinQuery(
            {n: reduced_hg.edge(n) for n in reduced_hg.edge_names},
            attr_order=query.attrs,
        )
        run_db = reduced_db
        state = HierarchicalState(run_query, stats=stats)
    else:
        run_query, run_db = query, db
        state = GenericGHDState(run_query, run_db, stats=stats)

    result = sweep(run_query, run_db, state, stats=stats)
    if tuple(result.attrs) != tuple(query.attrs):  # pragma: no cover - defensive
        raise InvariantError("sweep returned unexpected attribute layout")
    return result.expand_intervals(tau / 2 if tau else 0)
