"""JOINFIRST: non-temporal join first, temporal filter last.

Section 6.1's second baseline: compute all value matches with a mature
non-temporal engine — the paper uses a subgraph matcher; we use the
worst-case-optimal GenericJoin, which plays the same role — then check
the valid-interval intersection of every match. Fast exactly when the
non-temporal result is small; catastrophically slow when temporal
predicates would have pruned early, which is the behaviour the paper's
Figure 10 shows and our benches reproduce.
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional, Tuple

from ..core.durability import shrink_database
from ..core.interval import Interval, Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..nontemporal.generic_join import generic_join_with_order
from ..nontemporal.hash_join import lookup_index
from ..obs import ExecutionStats

Values = Tuple[object, ...]


def joinfirst_join(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    stats: Optional[ExecutionStats] = None,
) -> JoinResultSet:
    """Evaluate a τ-durable temporal join with the join-first strategy.

    ``stats`` opts into telemetry: ``jf.matches`` (the non-temporal
    GenericJoin result size — the quantity that makes or breaks this
    strategy), ``jf.survivors`` (matches whose valid intervals actually
    intersect, == ``results``), and the ``phase.nontemporal_join`` /
    ``phase.filter`` timers.
    """
    query.validate(database)
    db = shrink_database(database, tau)
    if stats is None:
        matches, order = generic_join_with_order(query.hypergraph, db)
    else:
        with stats.timer("phase.nontemporal_join"):
            matches, order = generic_join_with_order(query.hypergraph, db)
        stats.incr("jf.matches", len(matches))
    order_pos = {a: i for i, a in enumerate(order)}

    # Interval lookup per relation, keyed on the relation's values in the
    # query edge's attribute order.
    lookups = []
    for name in query.edge_names:
        eattrs = query.edge(name)
        rel = db[name]
        rel_pos = rel.positions(eattrs)
        index: Dict[Values, Interval] = {
            tuple(values[p] for p in rel_pos): interval
            for values, interval in rel
        }
        lookups.append((tuple(order_pos[a] for a in eattrs), index))

    out_perm = tuple(order_pos[a] for a in query.attrs)
    out = JoinResultSet(query.attrs)
    filter_start = time.perf_counter()
    for match in matches:
        interval = Interval.always()
        alive = True
        for pos, index in lookups:
            ivl = index[tuple(match[p] for p in pos)]
            interval = interval.intersect(ivl)
            if interval is None:
                alive = False
                break
        if alive:
            out.append(tuple(match[p] for p in out_perm), interval)
    if stats is not None:
        stats.add_time("phase.filter", time.perf_counter() - filter_start)
        stats.incr("jf.survivors", len(out))
        stats.incr("results", len(out))
    half = tau / 2 if tau else 0
    return out.expand_intervals(half)
