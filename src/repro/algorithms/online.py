"""Online (streaming) temporal joins.

Section 3.1 observes that the temporal join "reduces to a dynamic
instance of natural join, where we maintain the join result over time as
tuples are inserted and deleted according to their valid intervals". The
offline TIMEFIRST sweep replays that dynamic instance from sorted
endpoints; this module exposes the dynamic instance itself.

:class:`OnlineTemporalJoin` ingests a *time-ordered* stream of tuple
arrivals (each with its valid interval) and emits every join result
exactly once, as soon as it can be finalized — i.e. at the smallest right
endpoint among its constituent tuples, just like the offline sweep. The
producer only needs to respect arrival order by interval start; expiry
is handled internally, so this is a one-pass, bounded-state operator
suitable for feeds whose past cannot be revisited.

Internally the operator reuses the sweep states of
:mod:`repro.algorithms.hierarchical` and
:mod:`repro.algorithms.generic_state` and keeps a min-heap of pending
expirations; :meth:`advance_to` drains every expiration up to a
watermark, and :meth:`finish` flushes the remainder.

Telemetry follows the PR-1 contract: pass ``stats=`` and the operator
records the same ``sweep.*`` counters as the offline sweep — after
:meth:`finish` on an endpoint-ordered replay of a database they match
:func:`repro.algorithms.timefirst.sweep` exactly (``sweep.events``,
``sweep.inserts``, ``sweep.enumerate_calls``, ``sweep.active_peak``,
``results``), and the underlying state adds its ``hier.*`` / ``ghd.*``
counters. Online-only events get the ``online.*`` prefix:
``online.clamped`` (non-strict out-of-order arrivals, with the
``online.clamp_reason`` note so degradation is never silent) and
``online.watermark_regressions`` (non-monotone :meth:`advance_to`
calls, which are no-ops).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Mapping, Optional, Tuple

from ..core.errors import QueryError
from ..core.interval import Interval, IntervalLike, Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet, ResultRow
from ..datastructures.heap import AddressableHeap
from ..obs import ExecutionStats

Values = Tuple[object, ...]


class OnlineTemporalJoin:
    """A push-based temporal join operator over an endpoint-ordered stream.

    Parameters
    ----------
    query:
        The join query; hierarchical queries get the §3.2 structure,
        everything else the GHD state.
    strict:
        When true (default), out-of-order arrivals (an interval starting
        before the watermark) raise :class:`QueryError`; when false they
        are clamped to the current watermark, trading exactness for
        robustness, which is the usual streaming compromise. Every clamp
        is recorded (``online.clamped`` counter and the
        ``online.clamp_reason`` note) when ``stats`` is attached.
    stats:
        Optional :class:`~repro.obs.ExecutionStats`. With ``None`` (the
        default) the pre-telemetry code path runs unchanged.

    The *watermark* is the largest instant known to be settled: the
    maximum of every drained expiration endpoint and every watermark
    declared via :meth:`advance_to`. Declaring a watermark is a promise
    that no future arrival starts before it; strict mode holds the
    producer to that promise.
    """

    def __init__(
        self,
        query: JoinQuery,
        strict: bool = True,
        stats: Optional[ExecutionStats] = None,
    ) -> None:
        from .generic_state import GenericGHDState
        from .hierarchical import HierarchicalState

        self.query = query
        self.strict = strict
        self._stats = stats
        if query.is_hierarchical:
            self._state = HierarchicalState(query, stats=stats)
        else:
            self._state = GenericGHDState(query, stats=stats)
        self._pending: AddressableHeap = AddressableHeap()
        self._watermark: Optional[Number] = None
        self._emitted = JoinResultSet(query.attrs)
        self._emit_cursor = 0
        self._seq = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def watermark(self) -> Optional[Number]:
        """Largest settled instant: drained expirations and declarations."""
        return self._watermark

    @property
    def active_count(self) -> int:
        """Tuples currently alive inside the operator (bounded state)."""
        return len(self._pending)

    def insert(
        self, relation: str, values: Values, interval: IntervalLike
    ) -> List[ResultRow]:
        """Ingest one tuple; returns results finalized by this arrival.

        Arrivals must be ordered by interval start (the stream's event
        time). Before the tuple is inserted, every pending expiration
        strictly before its start is drained — those results can never
        change again.
        """
        if self._closed:
            raise QueryError("insert after finish() on an online join")
        iv = Interval.coerce(interval)
        stats = self._stats
        if self._watermark is not None and iv.lo < self._watermark:
            if self.strict:
                raise QueryError(
                    f"out-of-order arrival: start {iv.lo} precedes the "
                    f"watermark {self._watermark}"
                )
            clamped = Interval(self._watermark, max(self._watermark, iv.hi))
            if stats is not None:
                stats.incr("online.clamped")
                stats.note(
                    "online.clamp_reason",
                    f"out-of-order arrival {relation}{values} {iv} clamped "
                    f"to {clamped} at watermark {self._watermark}",
                )
            iv = clamped
        self._drain(iv.lo, inclusive=False)
        self._state.insert(relation, values, iv)
        self._pending.push((iv.hi, self._seq), (relation, values, iv))
        self._seq += 1
        if stats is not None:
            stats.incr("sweep.events")
            stats.incr("sweep.inserts")
            stats.peak("sweep.active_peak", len(self._pending))
        return self._collect()

    def advance_to(self, watermark: Number) -> List[ResultRow]:
        """Declare that no future arrival starts before ``watermark``.

        Drains every expiration *strictly* before the watermark (a future
        arrival starting exactly at the watermark may still join tuples
        expiring there — closed intervals touch) and returns the results
        finalized by them. A non-monotone call (a watermark at or below
        the current one) is a no-op: nothing new can be strictly below an
        already-settled instant, and the watermark never regresses.
        """
        if self._closed:
            raise QueryError("advance_to after finish() on an online join")
        if self._watermark is not None and watermark <= self._watermark:
            if self._stats is not None and watermark < self._watermark:
                self._stats.incr("online.watermark_regressions")
            return self._collect()
        self._drain(watermark, inclusive=False)
        if self._watermark is None or watermark > self._watermark:
            self._watermark = watermark
        return self._collect()

    def finish(self) -> List[ResultRow]:
        """Flush all remaining state; the operator is closed afterwards.

        Idempotent: a second call returns the empty list and re-emits
        nothing.
        """
        if not self._closed:
            self._drain(float("inf"), inclusive=True)
            self._closed = True
        return self._collect()

    def results(self) -> JoinResultSet:
        """Everything emitted so far (shared, do not mutate)."""
        return self._emitted

    # ------------------------------------------------------------------
    def _drain(self, until: Number, inclusive: bool) -> None:
        stats = self._stats
        while self._pending:
            (hi, _), payload = self._pending.peek()
            if hi > until or (hi == until and not inclusive):
                break
            self._pending.pop()
            relation, values, iv = payload
            before = len(self._emitted)
            self._state.enumerate_results(relation, values, iv, self._emitted)
            self._state.delete(relation, values, iv)
            self._watermark = hi if self._watermark is None else max(self._watermark, hi)
            if stats is not None:
                stats.incr("sweep.events")
                stats.incr("sweep.enumerate_calls")
                stats.incr("results", len(self._emitted) - before)

    def _collect(self) -> List[ResultRow]:
        new = self._emitted.rows[self._emit_cursor :]
        self._emit_cursor = len(self._emitted.rows)
        return list(new)


def stream_temporal_join(
    query: JoinQuery,
    arrivals: Iterable[Tuple[str, Values, IntervalLike]],
    strict: bool = True,
    stats: Optional[ExecutionStats] = None,
) -> Iterator[ResultRow]:
    """Generator façade: yield results as an arrival stream is consumed.

    ``arrivals`` must be ordered by interval start. Equivalent to the
    offline :func:`repro.algorithms.timefirst.timefirst_join` on the same
    tuples (the test-suite checks exactly that), but with bounded memory
    proportional to the number of simultaneously valid tuples.
    """
    op = OnlineTemporalJoin(query, strict=strict, stats=stats)
    for relation, values, interval in arrivals:
        yield from op.insert(relation, values, interval)
    yield from op.finish()


def arrivals_from_database(
    database: Mapping[str, TemporalRelation]
) -> List[Tuple[str, Values, Interval]]:
    """Flatten a stored database into a start-ordered arrival stream."""
    out: List[Tuple[str, Values, Interval]] = []
    for name, rel in database.items():
        for values, interval in rel:
            out.append((name, values, interval))
    out.sort(key=lambda item: (item[2].lo, item[2].hi))
    return out
