"""Online (streaming) temporal joins.

Section 3.1 observes that the temporal join "reduces to a dynamic
instance of natural join, where we maintain the join result over time as
tuples are inserted and deleted according to their valid intervals". The
offline TIMEFIRST sweep replays that dynamic instance from sorted
endpoints; this module exposes the dynamic instance itself.

:class:`OnlineTemporalJoin` ingests a *time-ordered* stream of tuple
arrivals (each with its valid interval) and emits every join result
exactly once, as soon as it can be finalized — i.e. at the smallest right
endpoint among its constituent tuples, just like the offline sweep. The
producer only needs to respect arrival order by interval start; expiry
is handled internally, so this is a one-pass, bounded-state operator
suitable for feeds whose past cannot be revisited.

Internally the operator reuses the sweep states of
:mod:`repro.algorithms.hierarchical` and
:mod:`repro.algorithms.generic_state` and keeps a min-heap of pending
expirations; :meth:`advance_to` drains every expiration up to a
watermark, and :meth:`finish` flushes the remainder.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Mapping, Optional, Tuple

from ..core.errors import QueryError
from ..core.interval import Interval, IntervalLike, Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet, ResultRow
from ..datastructures.heap import AddressableHeap

Values = Tuple[object, ...]


class OnlineTemporalJoin:
    """A push-based temporal join operator over an endpoint-ordered stream.

    Parameters
    ----------
    query:
        The join query; hierarchical queries get the §3.2 structure,
        everything else the GHD state.
    strict:
        When true (default), out-of-order arrivals (an interval starting
        before an already-processed expiration) raise
        :class:`QueryError`; when false they are clamped to the current
        watermark, trading exactness for robustness, which is the usual
        streaming compromise.
    """

    def __init__(self, query: JoinQuery, strict: bool = True) -> None:
        from .generic_state import GenericGHDState
        from .hierarchical import HierarchicalState

        self.query = query
        self.strict = strict
        if query.is_hierarchical:
            self._state = HierarchicalState(query)
        else:
            self._state = GenericGHDState(query)
        self._pending: AddressableHeap = AddressableHeap()
        self._watermark: Optional[Number] = None
        self._emitted = JoinResultSet(query.attrs)
        self._emit_cursor = 0
        self._seq = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def watermark(self) -> Optional[Number]:
        """Largest timestamp fully processed so far."""
        return self._watermark

    @property
    def active_count(self) -> int:
        """Tuples currently alive inside the operator (bounded state)."""
        return len(self._pending)

    def insert(
        self, relation: str, values: Values, interval: IntervalLike
    ) -> List[ResultRow]:
        """Ingest one tuple; returns results finalized by this arrival.

        Arrivals must be ordered by interval start (the stream's event
        time). Before the tuple is inserted, every pending expiration
        strictly before its start is drained — those results can never
        change again.
        """
        if self._closed:
            raise QueryError("insert after finish() on an online join")
        iv = Interval.coerce(interval)
        if self._watermark is not None and iv.lo < self._watermark:
            if self.strict:
                raise QueryError(
                    f"out-of-order arrival: start {iv.lo} precedes the "
                    f"watermark {self._watermark}"
                )
            iv = Interval(self._watermark, max(self._watermark, iv.hi))
        self._drain(iv.lo, inclusive=False)
        self._state.insert(relation, values, iv)
        self._pending.push((iv.hi, self._seq), (relation, values, iv))
        self._seq += 1
        return self._collect()

    def advance_to(self, watermark: Number) -> List[ResultRow]:
        """Declare that no future arrival starts before ``watermark``.

        Drains every expiration *strictly* before the watermark (a future
        arrival starting exactly at the watermark may still join tuples
        expiring there — closed intervals touch) and returns the results
        finalized by them.
        """
        if self._closed:
            raise QueryError("advance_to after finish() on an online join")
        self._drain(watermark, inclusive=False)
        return self._collect()

    def finish(self) -> List[ResultRow]:
        """Flush all remaining state; the operator is closed afterwards."""
        if not self._closed:
            self._drain(float("inf"), inclusive=True)
            self._closed = True
        return self._collect()

    def results(self) -> JoinResultSet:
        """Everything emitted so far (shared, do not mutate)."""
        return self._emitted

    # ------------------------------------------------------------------
    def _drain(self, until: Number, inclusive: bool) -> None:
        while self._pending:
            (hi, _), payload = self._pending.peek()
            if hi > until or (hi == until and not inclusive):
                break
            self._pending.pop()
            relation, values, iv = payload
            self._state.enumerate_results(relation, values, iv, self._emitted)
            self._state.delete(relation, values, iv)
            self._watermark = hi if self._watermark is None else max(self._watermark, hi)

    def _collect(self) -> List[ResultRow]:
        new = self._emitted.rows[self._emit_cursor :]
        self._emit_cursor = len(self._emitted.rows)
        return list(new)


def stream_temporal_join(
    query: JoinQuery,
    arrivals: Iterable[Tuple[str, Values, IntervalLike]],
    strict: bool = True,
) -> Iterator[ResultRow]:
    """Generator façade: yield results as an arrival stream is consumed.

    ``arrivals`` must be ordered by interval start. Equivalent to the
    offline :func:`repro.algorithms.timefirst.timefirst_join` on the same
    tuples (the test-suite checks exactly that), but with bounded memory
    proportional to the number of simultaneously valid tuples.
    """
    op = OnlineTemporalJoin(query, strict=strict)
    for relation, values, interval in arrivals:
        yield from op.insert(relation, values, interval)
    yield from op.finish()


def arrivals_from_database(
    database: Mapping[str, TemporalRelation]
) -> List[Tuple[str, Values, Interval]]:
    """Flatten a stored database into a start-ordered arrival stream."""
    out: List[Tuple[str, Values, Interval]] = []
    for name, rel in database.items():
        for values, interval in rel:
            out.append((name, values, interval))
    out.sort(key=lambda item: (item[2].lo, item[2].hi))
    return out
