"""Endpoint event streams for the TIMEFIRST sweep (Algorithm 1, line 1).

The sweep stops at every interval endpoint: left endpoints insert the
tuple into the dynamic structure, right endpoints enumerate the results
the tuple participates in and then delete it.

Tie-breaking is load-bearing: intervals are closed, so ``[1, 2]`` and
``[2, 3]`` *do* join. All insertions at time ``t`` must therefore be
processed before any expiration at time ``t`` — encoded by sorting on
``(time, kind)`` with ``INSERT < EXPIRE``. Among equal ``(time, kind)``
events the order is the deterministic input order, which also fixes which
of several same-endpoint tuples enumerates a shared result (exactly one
of them does: the first expiration processed sees the others still
active; later ones no longer see it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Mapping, Tuple

from ..core.interval import Interval, Number
from ..core.relation import TemporalRelation

INSERT = 0
EXPIRE = 1


@dataclass(frozen=True)
class Event:
    """One sweep stop: a tuple's left or right endpoint."""

    time: Number
    kind: int  # INSERT or EXPIRE
    seq: int  # input order, for deterministic ties
    relation: str
    values: Tuple[object, ...]
    interval: Interval


def event_stream(database: Mapping[str, TemporalRelation]) -> List[Event]:
    """Sorted endpoint events for all tuples of ``database``.

    ``O(N log N)`` — the sort in Algorithm 1 line 1. Every tuple yields
    exactly one INSERT and one EXPIRE event.
    """
    events: List[Event] = []
    seq = 0
    for name in database:
        for values, interval in database[name]:
            events.append(Event(interval.lo, INSERT, seq, name, values, interval))
            events.append(Event(interval.hi, EXPIRE, seq, name, values, interval))
            seq += 1
    events.sort(key=lambda e: (e.time, e.kind, e.seq))
    return events


def distinct_endpoint_count(database: Mapping[str, TemporalRelation]) -> int:
    """Number of distinct endpoint values (used by run-time analyses)."""
    points = set()
    for rel in database.values():
        for _, interval in rel:
            points.add(interval.lo)
            points.add(interval.hi)
    return len(points)
