"""Algorithm registry and the dispatching ``temporal_join`` entry point.

Every evaluation strategy from the paper is registered under the name the
experiments section uses; ``temporal_join(..., algorithm="auto")`` runs
the Figure 7 planner and dispatches to its pick.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from ..core.errors import PlanError, QueryError
from ..core.interval import Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet

Algorithm = Callable[..., JoinResultSet]

_REGISTRY: Dict[str, Algorithm] = {}


def register(name: str) -> Callable[[Algorithm], Algorithm]:
    """Decorator registering an algorithm under ``name``."""

    def deco(fn: Algorithm) -> Algorithm:
        _REGISTRY[name] = fn
        return fn

    return deco


def available_algorithms() -> list:
    """Registered algorithm names (sorted)."""
    _ensure_loaded()
    return sorted(_REGISTRY)


_DESCRIPTIONS = {
    "timefirst": (
        "TIMEFIRST sweep (Alg. 1): attribute-tree state on hierarchical "
        "queries (O(N log N + K), Thm. 6), GHD state otherwise "
        "(O(N^(fhtw+1) + K), Thm. 9). Applicable to every query."
    ),
    "timefirst-cm": (
        "TIMEFIRST with the comparison-model §3.2 structure (BST + t+ "
        "heaps). (r-)hierarchical queries with ordered domains only."
    ),
    "hybrid": (
        "HYBRID (Alg. 5): GHD bag materialization + one sweep "
        "(O(N^min(fhtw+1, hhtw) + K), Thm. 12). Applicable everywhere; "
        "the choice for cyclic queries."
    ),
    "hybrid-interval": (
        "HYBRID-INTERVAL (Alg. 6): guarded core join + interval-join "
        "residuals (O(N^1.5 + K) on line joins). Requires a guarded "
        "partition (lines, stars, TPC-style chains)."
    ),
    "baseline": (
        "BASELINE: pairwise forward-scan binary temporal joins with a "
        "value-statistics join-order search. Applicable everywhere; "
        "vulnerable to intermediate blow-up."
    ),
    "joinfirst": (
        "JOINFIRST: worst-case-optimal non-temporal join, then interval "
        "filtering. Fast iff the non-temporal result is small."
    ),
    "naive": "Brute-force backtracking oracle (testing only).",
}


def describe_algorithms() -> str:
    """Human-readable summary of every registered algorithm."""
    _ensure_loaded()
    lines = []
    for name in sorted(_REGISTRY):
        description = _DESCRIPTIONS.get(name, "(no description)")
        lines.append(f"{name:>16}: {description}")
    return "\n".join(lines)


def get_algorithm(name: str) -> Algorithm:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise QueryError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        ) from None


_loaded = False


def _ensure_loaded() -> None:
    global _loaded
    if _loaded:
        return
    from .baseline import baseline_join
    from .hierarchical_cm import ComparisonHierarchicalState
    from .hybrid import hybrid_join
    from .hybrid_interval import hybrid_interval_join
    from .joinfirst import joinfirst_join
    from .naive import naive_join
    from .timefirst import timefirst_join

    _REGISTRY.setdefault("timefirst", timefirst_join)

    def timefirst_cm(query, database, tau=0, **kwargs):
        """TIMEFIRST with the comparison-model §3.2 structure.

        Only applicable to (r-)hierarchical queries with totally ordered
        attribute domains; registered for the data-structure ablation.
        Merely r-hierarchical queries go through the footnote-2 instance
        reduction first, like the hashed variant.
        """
        from ..core.classification import reduce_instance
        from ..core.durability import shrink_database
        from ..core.query import JoinQuery

        if not query.is_hierarchical and query.is_r_hierarchical:
            reduced_hg, reduced_db = reduce_instance(
                query.hypergraph, shrink_database(database, tau)
            )
            reduced_query = JoinQuery(
                {n: reduced_hg.edge(n) for n in reduced_hg.edge_names},
                attr_order=query.attrs,
            )
            result = timefirst_join(
                reduced_query, reduced_db,
                state_factory=lambda q, db: ComparisonHierarchicalState(q),
                **kwargs,
            )
            return result.expand_intervals(tau / 2 if tau else 0)
        return timefirst_join(
            query, database, tau=tau,
            state_factory=lambda q, db: ComparisonHierarchicalState(q),
            **kwargs,
        )

    _REGISTRY.setdefault("timefirst-cm", timefirst_cm)
    _REGISTRY.setdefault("hybrid", hybrid_join)
    _REGISTRY.setdefault("hybrid-interval", hybrid_interval_join)
    _REGISTRY.setdefault("baseline", baseline_join)
    _REGISTRY.setdefault("joinfirst", joinfirst_join)
    _REGISTRY.setdefault("naive", naive_join)
    _loaded = True


def temporal_join(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    algorithm: str = "auto",
    **kwargs,
) -> JoinResultSet:
    """Evaluate the τ-durable temporal join of ``query`` on ``database``.

    Parameters
    ----------
    query:
        The join query (hypergraph + output attribute order).
    database:
        Mapping from relation name to :class:`TemporalRelation`.
    tau:
        Durability threshold; 0 gives the plain temporal join.
    algorithm:
        ``"auto"`` (Figure 7 planner), or one of
        :func:`available_algorithms` — ``timefirst``, ``hybrid``,
        ``hybrid-interval``, ``baseline``, ``joinfirst``, ``naive``.
    kwargs:
        Forwarded to the selected algorithm (e.g. ``order=`` for
        ``baseline``, ``mode=`` for ``hybrid``).

    Returns
    -------
    JoinResultSet
        Result tuples in ``query.attrs`` order with their valid intervals
        (the original, un-shrunk intervals even when ``tau > 0``).
    """
    _ensure_loaded()
    if algorithm == "auto":
        from ..core.planner import plan

        choice = plan(query)
        fn = _REGISTRY[choice.algorithm]
        try:
            return fn(query, database, tau=tau, **kwargs)
        except PlanError:
            # Planner said guarded but caller supplied an exotic database
            # edge case; fall back to the universally applicable HYBRID.
            return _REGISTRY["hybrid"](query, database, tau=tau, **kwargs)
    fn = get_algorithm(algorithm)
    return fn(query, database, tau=tau, **kwargs)
