"""Algorithm registry and the dispatching ``temporal_join`` entry point.

Every evaluation strategy from the paper is registered under the name the
experiments section uses; ``temporal_join(..., algorithm="auto")`` runs
the Figure 7 planner and dispatches to its pick. When the planner's pick
is structurally inapplicable to the given instance (checked *up front*,
never by catching mid-execution errors), dispatch falls back to the
universally applicable HYBRID with algorithm-specific keyword arguments
stripped.

:func:`explain_analyze` is the observability entry point: it evaluates
the query with an :class:`~repro.obs.ExecutionStats` attached and
returns the planner's static ``explain()`` alongside the measured
counters — the paper's theory (Figure 4 exponents) next to what actually
happened.
"""

from __future__ import annotations

import inspect
import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..core.errors import QueryError
from ..core.interval import Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..obs import ExecutionStats

Algorithm = Callable[..., JoinResultSet]

_REGISTRY: Dict[str, Algorithm] = {}


def register(name: str) -> Callable[[Algorithm], Algorithm]:
    """Decorator registering an algorithm under ``name``."""

    def deco(fn: Algorithm) -> Algorithm:
        _REGISTRY[name] = fn
        return fn

    return deco


def available_algorithms() -> list:
    """Registered algorithm names (sorted)."""
    _ensure_loaded()
    return sorted(_REGISTRY)


_DESCRIPTIONS = {
    "timefirst": (
        "TIMEFIRST sweep (Alg. 1): attribute-tree state on hierarchical "
        "queries (O(N log N + K), Thm. 6), GHD state otherwise "
        "(O(N^(fhtw+1) + K), Thm. 9). Applicable to every query."
    ),
    "timefirst-cm": (
        "TIMEFIRST with the comparison-model §3.2 structure (BST + t+ "
        "heaps). (r-)hierarchical queries with ordered domains only."
    ),
    "hybrid": (
        "HYBRID (Alg. 5): GHD bag materialization + one sweep "
        "(O(N^min(fhtw+1, hhtw) + K), Thm. 12). Applicable everywhere; "
        "the choice for cyclic queries."
    ),
    "hybrid-interval": (
        "HYBRID-INTERVAL (Alg. 6): guarded core join + interval-join "
        "residuals (O(N^1.5 + K) on line joins). Requires a guarded "
        "partition (lines, stars, TPC-style chains)."
    ),
    "baseline": (
        "BASELINE: pairwise binary temporal joins (lazy endpoint sweep "
        "by default) with a value-statistics join-order search. "
        "Applicable everywhere; vulnerable to intermediate blow-up."
    ),
    "joinfirst": (
        "JOINFIRST: worst-case-optimal non-temporal join, then interval "
        "filtering. Fast iff the non-temporal result is small."
    ),
    "naive": "Brute-force backtracking oracle (testing only).",
}


def describe_algorithms() -> str:
    """Human-readable summary of every registered algorithm."""
    _ensure_loaded()
    lines = []
    for name in sorted(_REGISTRY):
        description = _DESCRIPTIONS.get(name, "(no description)")
        lines.append(f"{name:>16}: {description}")
    return "\n".join(lines)


def get_algorithm(name: str) -> Algorithm:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise QueryError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        ) from None


_loaded = False


def _ensure_loaded() -> None:
    global _loaded
    if _loaded:
        return
    from .baseline import baseline_join
    from .hierarchical_cm import ComparisonHierarchicalState
    from .hybrid import hybrid_join
    from .hybrid_interval import hybrid_interval_join
    from .joinfirst import joinfirst_join
    from .naive import naive_join
    from .timefirst import timefirst_join

    _REGISTRY.setdefault("timefirst", timefirst_join)

    def timefirst_cm(query, database, tau=0, stats=None, **kwargs):
        """TIMEFIRST with the comparison-model §3.2 structure.

        Only applicable to (r-)hierarchical queries with totally ordered
        attribute domains; registered for the data-structure ablation.
        Merely r-hierarchical queries go through the footnote-2 instance
        reduction first, like the hashed variant.
        """
        from ..core.classification import reduce_instance
        from ..core.durability import shrink_database
        from ..core.query import JoinQuery

        factory = lambda q, db: ComparisonHierarchicalState(q, stats=stats)  # noqa: E731
        if not query.is_hierarchical and query.is_r_hierarchical:
            reduced_hg, reduced_db = reduce_instance(
                query.hypergraph, shrink_database(database, tau)
            )
            reduced_query = JoinQuery(
                {n: reduced_hg.edge(n) for n in reduced_hg.edge_names},
                attr_order=query.attrs,
            )
            result = timefirst_join(
                reduced_query, reduced_db,
                state_factory=factory,
                stats=stats,
                **kwargs,
            )
            return result.expand_intervals(tau / 2 if tau else 0)
        return timefirst_join(
            query, database, tau=tau,
            state_factory=factory,
            stats=stats,
            **kwargs,
        )

    _REGISTRY.setdefault("timefirst-cm", timefirst_cm)
    _REGISTRY.setdefault("hybrid", hybrid_join)
    _REGISTRY.setdefault("hybrid-interval", hybrid_interval_join)
    _REGISTRY.setdefault("baseline", baseline_join)
    _REGISTRY.setdefault("joinfirst", joinfirst_join)
    _REGISTRY.setdefault("naive", naive_join)
    _loaded = True


def _check_tau(tau: Number) -> None:
    """Reject non-finite durability thresholds at the API boundary.

    ``tau = inf`` would shrink every finite interval to nothing while
    mapping infinite endpoints onto their fixed points — a join that can
    only ever return the always-valid tuples, which no caller has ever
    meant. ``tau = nan`` silently drops everything. Both now fail fast
    with an explanation instead of producing a surprising empty result.
    """
    try:
        finite = math.isfinite(tau)
    except TypeError:
        raise QueryError(
            f"tau must be a real number, got {type(tau).__name__}: {tau!r}"
        ) from None
    if not finite:
        raise QueryError(
            f"tau must be finite, got {tau!r}; durability over an infinite "
            "window is not a meaningful temporal join"
        )
    if tau < 0:
        raise QueryError(f"tau must be non-negative, got {tau!r}")


def _applicable(name: str, query: JoinQuery) -> bool:
    """Up-front structural applicability check for an algorithm pick.

    This is the *entire* fallback condition for ``algorithm="auto"``:
    a plan is abandoned only when this predicate says the algorithm
    cannot run on ``query`` at all, never because some mid-execution
    error happened to be a :class:`PlanError`.
    """
    if name == "hybrid-interval":
        from ..nontemporal.ghd import find_guarded_partition

        return find_guarded_partition(query.hypergraph) is not None
    if name == "timefirst-cm":
        return query.is_hierarchical or query.is_r_hierarchical
    return True


#: Keyword arguments consumed by the dispatch layer itself, never by an
#: algorithm function. :func:`strip_unsupported_kwargs` always keeps them,
#: so benchmark code can hand one common kwargs dict (``workers=`` …) to
#: algorithms with differing signatures. ``engine`` lives here for the
#: same reason: algorithms without a kernel fast path must have it
#: stripped at dispatch, not see it and error. ``prepared`` likewise:
#: only the dispatch layer knows how to swap prepared columns in.
#: ``predicate`` too: a non-``"overlaps"`` predicate reroutes dispatch to
#: the binary lazy-sweep path before any algorithm is called.
EXECUTOR_KWARGS = frozenset(
    {"workers", "parallel_mode", "engine", "prepared", "predicate"}
)

#: Engines accepted by :func:`temporal_join` / :func:`explain_analyze`.
ENGINES = ("auto", "kernel", "object")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise QueryError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )


def _engine_decision(
    name: str, engine: str, kwargs: Mapping
) -> Tuple[str, Optional[str]]:
    """The one engine-selection rule, shared by every dispatch site.

    Returns ``(used_engine, fallback_reason)`` for the *post-fallback*
    algorithm ``name``: serial dispatch, the parallel executor,
    ``explain_analyze``'s report and the batch executor all call this
    same function, so the engine that runs and the engine that is
    reported cannot drift apart.

    ``engine="auto"`` and ``engine="kernel"`` both pick the kernel
    whenever the resolved algorithm has a kernel implementation, no
    algorithm-specific kwargs (e.g. ``state_factory=``) force the object
    path, and the registry entry is still the stock implementation (the
    kernel path accelerates *that* algorithm, so a replaced/patched
    registration — tests, user overrides — must win over the fast path).

    ``fallback_reason`` is non-``None`` exactly when the caller asked
    for ``engine="kernel"`` explicitly and the request degraded — the
    silent-degradation bug this replaces: an explicit request that runs
    the object path now records *why* (``kernel.fallback_reason``).
    ``engine="auto"`` degradations are normal dispatch, not fallbacks,
    and never produce a reason.
    """
    from ..kernels.engine import supports_kernel
    from .timefirst import timefirst_join

    if engine == "object":
        return "object", None
    explicit = engine == "kernel"
    if not supports_kernel(name):
        return "object", (
            f"algorithm {name!r} has no kernel fast path"
            if explicit else None
        )
    if kwargs:
        return "object", (
            f"algorithm kwargs {sorted(kwargs)} force the object path"
            if explicit else None
        )
    if _REGISTRY.get(name) is not timefirst_join:
        return "object", (
            f"registry entry for {name!r} is overridden; the kernel "
            "accelerates the stock implementation only"
            if explicit else None
        )
    return "kernel", None


def _kernel_eligible(name: str, engine: str, kwargs: Mapping) -> bool:
    """True iff :func:`_engine_decision` selects the kernel fast path."""
    return _engine_decision(name, engine, kwargs)[0] == "kernel"


def strip_unsupported_kwargs(fn: Algorithm, kwargs: Dict) -> Dict:
    """Drop keyword arguments ``fn`` does not accept.

    Dispatch-layer kwargs (:data:`EXECUTOR_KWARGS`) survive regardless of
    ``fn``'s signature — they are consumed before ``fn`` is called. Used
    on the auto-dispatch fallback path (kwargs meant for the planner's
    original pick, e.g. ``residual_strategy=`` for HYBRID-INTERVAL, must
    not crash the substitute algorithm) and by
    :func:`repro.bench.harness.measure` to pass one shared kwargs dict
    across algorithms.
    """
    sig = inspect.signature(fn)
    params = sig.parameters.values()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
        return dict(kwargs)
    accepted = {
        p.name
        for p in params
        if p.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    }
    accepted |= EXECUTOR_KWARGS
    return {k: v for k, v in kwargs.items() if k in accepted}


#: Back-compat alias for the previously private name.
_strip_unsupported_kwargs = strip_unsupported_kwargs


def _resolve_auto(
    query: JoinQuery, kwargs: Dict, choice=None, stats=None
) -> Tuple[str, Algorithm, Dict]:
    """Run the Figure 7 planner and validate its pick up front.

    Returns ``(name, fn, kwargs)``; when the planner's pick is
    structurally inapplicable to this instance the universally
    applicable HYBRID is substituted, with algorithm-specific kwargs
    stripped. Errors raised *during* the chosen algorithm's execution —
    including :class:`PlanError` from nested machinery — propagate to
    the caller untouched. Callers that already hold the
    :class:`~repro.core.planner.Plan` pass it as ``choice`` so the
    planner runs once per call, not once per layer; ``stats`` (used only
    when the planner actually runs here) collects the ``planner.*``
    search counters.
    """
    from ..core.planner import plan

    if choice is None:
        choice = plan(query, stats=stats)
    name = choice.algorithm
    if _applicable(name, query):
        return name, _REGISTRY[name], kwargs
    fallback = _REGISTRY["hybrid"]
    return "hybrid", fallback, _strip_unsupported_kwargs(fallback, kwargs)


def _binary_predicate_join(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number,
    predicate: str,
    algorithm: str,
    stats: Optional[ExecutionStats],
    workers: Optional[int],
    engine: str,
    prepared,
) -> JoinResultSet:
    """Dispatch a non-``overlaps`` predicate to the lazy-sweep binary path.

    Allen predicates are defined on a *pair* of intervals, so they apply
    to binary queries only; the multiway machinery (attribute trees,
    GHDs, shard-ownership merge) is all built on intersection semantics.
    Hence the up-front :class:`QueryError` walls: exactly two edges, no
    parallel workers, and only the ``auto``/``baseline`` algorithm names
    (both of which mean "the binary join" on a two-edge query anyway).

    τ filters the *emitted* pair interval — the intersection, or the gap
    for ``before`` — by duration, consistent with the shrink/expand
    durability semantics of the overlaps path (where the emitted
    interval is always the intersection).
    """
    names = query.edge_names
    if len(names) != 2:
        raise QueryError(
            f"predicate {predicate!r} requires a binary query (exactly two "
            f"edges); got {len(names)} edges {list(names)}. Only the "
            "default 'overlaps' predicate supports multiway queries."
        )
    if workers is not None and workers > 1:
        raise QueryError(
            f"predicate {predicate!r} does not support workers={workers}: "
            "the sharded merge's ownership rule assumes overlap semantics"
        )
    if algorithm not in ("auto", "baseline"):
        raise QueryError(
            f"predicate {predicate!r} runs the lazy-sweep binary engine; "
            f"algorithm must be 'auto' or 'baseline', got {algorithm!r}"
        )
    query.validate(database)
    if engine == "object":
        from .binary import binary_temporal_join

        joined = binary_temporal_join(
            database[names[0]],
            database[names[1]],
            strategy="lazy-sweep",
            predicate=predicate,
            stats=stats,
        )
        out = JoinResultSet(query.attrs)
        perm = joined.positions(query.attrs) if len(joined) else ()
        for values, interval in joined:
            out.append(tuple(values[p] for p in perm), interval)
    else:
        from ..kernels.allen import kernel_predicate_join

        out = kernel_predicate_join(
            query, database, predicate, stats=stats, prepared=prepared
        )
    if tau:
        out = out.filter_durable(tau)
    if stats is not None:
        stats.incr("results", len(out))
    return out


def temporal_join(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    algorithm: str = "auto",
    stats: Optional[ExecutionStats] = None,
    workers: Optional[int] = None,
    parallel_mode: str = "process",
    engine: str = "auto",
    prepared=None,
    predicate: str = "overlaps",
    **kwargs,
) -> JoinResultSet:
    """Evaluate the τ-durable temporal join of ``query`` on ``database``.

    Parameters
    ----------
    query:
        The join query (hypergraph + output attribute order).
    database:
        Mapping from relation name to :class:`TemporalRelation`.
    tau:
        Durability threshold; 0 gives the plain temporal join. Must be a
        finite non-negative number (:class:`QueryError` otherwise).
    algorithm:
        ``"auto"`` (Figure 7 planner), or one of
        :func:`available_algorithms` — ``timefirst``, ``hybrid``,
        ``hybrid-interval``, ``baseline``, ``joinfirst``, ``naive``.
    stats:
        Optional :class:`~repro.obs.ExecutionStats` that the selected
        algorithm fills with execution counters and phase timers. When
        ``None`` (the default) no telemetry code runs.
    workers:
        ``None`` or ``1`` (default) runs the algorithm serially.
        ``workers >= 2`` routes through the time-domain sharded engine of
        :mod:`repro.parallel`: the same algorithm runs on ``workers``
        endpoint-balanced time shards and the results are merged exactly
        once — identical output up to row order.
    parallel_mode:
        ``"process"`` (spawn-based pool, the default) or ``"inline"``
        (same sharded execution inside the calling process, for
        debugging). Ignored unless ``workers >= 2``.
    engine:
        ``"auto"`` (default) runs the columnar kernel substrate
        (:mod:`repro.kernels` — interned values, rank-space endpoints,
        one pre-sorted event array) whenever the resolved algorithm has
        a kernel fast path, the object path otherwise. ``"kernel"``
        requests it explicitly; on algorithms without a fast path the
        kwarg is consumed and the object path runs (never an error).
        ``"object"`` forces the original object-row execution. Results
        are identical across engines up to row order.
    prepared:
        Optional :class:`~repro.kernels.prepared.PreparedDatabase` from
        :func:`repro.kernels.prepared.prepare`. Must match ``database``
        (validated up front, :class:`QueryError` on any drift); on the
        kernel path the call then skips interning, ranking and the
        event sort entirely, sweeping the artifact's cached columns.
        Ignored by the object path. See also
        :func:`repro.kernels.prepared.run_batch` for whole-fleet
        amortization.
    predicate:
        The interval predicate joining pairs must satisfy: the default
        ``"overlaps"`` (nonempty intersection — the paper's implicit
        join predicate, supported by every algorithm/engine/worker
        combination), any other extended Allen atom (``before``,
        ``meets``, ``starts``, ``started-by``, ``finishes``,
        ``finished-by``, ``during``, ``contains``, ``equals``) or an
        ``-or-`` union of atoms (``"overlaps-or-meets"``). Non-overlaps
        predicates require a **binary** (two-edge) query and run the
        lazy-sweep engine directly (serial only; ``engine=`` still
        selects object vs rank-space kernel execution); result intervals
        are the pair intersection, or the gap for ``before``, and τ
        filters that interval's duration. See
        :mod:`repro.algorithms.allen`.
    kwargs:
        Forwarded to the selected algorithm (e.g. ``order=`` for
        ``baseline``, ``mode=`` for ``hybrid``).

    Returns
    -------
    JoinResultSet
        Result tuples in ``query.attrs`` order with their valid intervals
        (the original, un-shrunk intervals even when ``tau > 0``).
    """
    _ensure_loaded()
    _check_tau(tau)
    _check_engine(engine)
    if workers is not None and workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers!r}")
    if prepared is not None:
        prepared.validate_against(database)
    from .allen import parse_predicate

    if parse_predicate(predicate) != ("overlaps",):
        return _binary_predicate_join(
            query, database, tau, predicate, algorithm, stats, workers,
            engine, prepared,
        )
    if workers is not None and workers > 1:
        from ..parallel import parallel_temporal_join

        return parallel_temporal_join(
            query,
            database,
            tau=tau,
            algorithm=algorithm,
            workers=workers,
            mode=parallel_mode,
            stats=stats,
            engine=engine,
            prepared=prepared,
            **kwargs,
        )
    if algorithm == "auto":
        if prepared is not None:
            choice = prepared.cached_plan(query, stats=stats)
            name, fn, kwargs = _resolve_auto(query, kwargs, choice=choice)
        else:
            name, fn, kwargs = _resolve_auto(query, kwargs, stats=stats)
    else:
        name = algorithm
        fn = get_algorithm(algorithm)
    return _dispatch_serial(
        name, fn, query, database, tau, stats, engine, kwargs,
        prepared=prepared,
    )


def _dispatch_serial(
    name: str,
    fn: Algorithm,
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number,
    stats: Optional[ExecutionStats],
    engine: str,
    kwargs: Dict,
    prepared=None,
) -> JoinResultSet:
    """Run one resolved algorithm serially, kernel fast path included."""
    used_engine, fallback_reason = _engine_decision(name, engine, kwargs)
    if fallback_reason is not None and stats is not None:
        stats.note("kernel.fallback_reason", fallback_reason)
    if used_engine == "kernel":
        from ..kernels.engine import kernel_timefirst_join
        from ..kernels.prepared import needs_reduction, prepared_kernel_join

        if prepared is not None and not needs_reduction(query):
            return prepared_kernel_join(query, prepared, tau=tau, stats=stats)
        return kernel_timefirst_join(query, database, tau=tau, stats=stats)
    if stats is not None:
        kwargs = dict(kwargs, stats=stats)
    return fn(query, database, tau=tau, **kwargs)


@dataclass
class ExplainAnalyze:
    """Planner explanation + measured execution profile of one join run."""

    algorithm: str
    plan_explanation: str
    stats: ExecutionStats
    result: JoinResultSet
    seconds: float
    tau: Number
    input_size: int
    engine: str = "object"
    #: Why an explicit ``engine="kernel"`` request degraded to the
    #: object path (``None`` when it did not) — the same text recorded
    #: under ``stats.notes["kernel.fallback_reason"]``.
    kernel_fallback: Optional[str] = None

    def render(self) -> str:
        """Aligned, ``EXPLAIN ANALYZE``-style report."""
        engine_line = f"engine:     {self.engine}"
        if self.kernel_fallback:
            engine_line += f" (kernel fallback: {self.kernel_fallback})"
        head = [
            f"algorithm:  {self.algorithm}",
            engine_line,
            f"tau:        {self.tau}",
            f"input rows: {self.input_size}",
            f"results:    {len(self.result)}",
            f"wall time:  {self.seconds * 1e3:.3f} ms",
        ]
        body = self.stats.render()
        sections = [
            "-- plan " + "-" * 32,
            self.plan_explanation,
            "-- execution " + "-" * 27,
            "\n".join(head),
        ]
        if body:
            sections += ["-- counters " + "-" * 28, body]
        return "\n".join(sections)


def explain_analyze(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    algorithm: str = "auto",
    stats: Optional[ExecutionStats] = None,
    workers: Optional[int] = None,
    parallel_mode: str = "process",
    engine: str = "auto",
    prepared=None,
    predicate: str = "overlaps",
    **kwargs,
) -> ExplainAnalyze:
    """Run the join with telemetry attached and report plan + counters.

    The observability counterpart of :func:`temporal_join`: evaluates the
    query exactly as ``temporal_join`` would (same planner, same
    fallback, same kwargs) but with an :class:`ExecutionStats` collecting
    counters, and returns an :class:`ExplainAnalyze` pairing the
    planner's static ``explain()`` with what actually happened — events
    processed, peak active-set size, intermediate cardinalities, phase
    timers, wall time.

    ``stats`` may be supplied to accumulate counters across several runs
    (e.g. a parameter sweep); by default a fresh object is used. With
    ``workers >= 2`` the run goes through the parallel engine and the
    report includes the ``parallel.*`` counters and per-shard timers.
    With ``prepared=`` the run reuses the artifact's columns and plan
    cache exactly as ``temporal_join`` would, and the report's counters
    include the ``prepared.*`` rows (cache hits, reuse, time saved).
    """
    _ensure_loaded()
    _check_tau(tau)
    _check_engine(engine)
    from .allen import parse_predicate

    if parse_predicate(predicate) != ("overlaps",):
        # Non-overlaps predicates bypass the Figure-7 planner entirely:
        # the binary lazy-sweep path is the plan.
        if prepared is not None:
            prepared.validate_against(database)
        if stats is None:
            stats = ExecutionStats()
        start = time.perf_counter()
        result = _binary_predicate_join(
            query, database, tau, predicate, algorithm, stats, workers,
            engine, prepared,
        )
        seconds = time.perf_counter() - start
        return ExplainAnalyze(
            algorithm="lazy-sweep",
            plan_explanation=(
                f"binary Allen-predicate join (predicate={predicate!r}): "
                "one lazy endpoint sweep per shared-attribute key group; "
                "no multiway plan applies"
            ),
            stats=stats,
            result=result,
            seconds=seconds,
            tau=tau,
            input_size=sum(len(rel) for rel in database.values()),
            engine="object" if engine == "object" else "kernel",
            kernel_fallback=None,
        )
    if stats is None:
        # Created before the planner runs so the ``planner.*`` search
        # counters land in the report alongside the execution counters.
        stats = ExecutionStats()
    if prepared is not None:
        prepared.validate_against(database)
        choice = prepared.cached_plan(query, stats=stats)
    else:
        from ..core.planner import plan

        choice = plan(query, stats=stats)
    if algorithm == "auto":
        # The planner already ran above; reuse its plan rather than
        # re-deriving it inside the resolver.
        name, fn, kwargs = _resolve_auto(query, kwargs, choice=choice)
    else:
        name = algorithm
        fn = get_algorithm(algorithm)
    # The decision for the *post-fallback* algorithm, from the same
    # helper the dispatch sites use — the reported engine is the engine
    # that runs, by construction rather than by synchronized duplicates.
    used_engine, kernel_fallback = _engine_decision(name, engine, kwargs)
    start = time.perf_counter()
    if workers is not None and workers > 1:
        from ..parallel import parallel_temporal_join

        result = parallel_temporal_join(
            query, database, tau=tau, algorithm=name,
            workers=workers, mode=parallel_mode, stats=stats,
            engine=engine, prepared=prepared, **kwargs,
        )
    else:
        result = _dispatch_serial(
            name, fn, query, database, tau, stats, engine, kwargs,
            prepared=prepared,
        )
    seconds = time.perf_counter() - start
    explanation = choice.explain()
    if algorithm != "auto":
        if name != choice.algorithm:
            explanation += (
                f"\n(algorithm forced to {name!r} by caller; the planner "
                f"would have picked {choice.algorithm!r})"
            )
    elif name != choice.algorithm:
        explanation += (
            f"\n(auto fallback: planner picked {choice.algorithm!r}, "
            f"inapplicable to this instance; ran {name!r})"
        )
    input_size = sum(len(rel) for rel in database.values())
    return ExplainAnalyze(
        algorithm=name,
        plan_explanation=explanation,
        stats=stats,
        result=result,
        seconds=seconds,
        tau=tau,
        input_size=input_size,
        engine=used_engine,
        kernel_fallback=kernel_fallback,
    )
