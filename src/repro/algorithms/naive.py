"""Brute-force reference oracle for correctness tests.

A recursive backtracking join: bind relations one at a time, checking
value consistency on shared attributes and the running interval
intersection. The control flow is short enough to be *obviously* correct,
which is the entire point — every production algorithm in the library is
differential-tested against this oracle on randomized instances.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..core.durability import shrink_database
from ..core.interval import Interval, Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..obs import ExecutionStats


def naive_join(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    stats: Optional[ExecutionStats] = None,
) -> JoinResultSet:
    """τ-durable temporal join by exhaustive backtracking.

    ``stats`` records ``naive.candidates`` — every (partial binding,
    tuple) pair the backtracking considered — and ``results``. The oracle
    is for testing, so the counter is maintained unconditionally.
    """
    query.validate(database)
    db = shrink_database(database, tau)
    names = query.edge_names
    edge_attrs = {name: query.edge(name) for name in names}
    out = JoinResultSet(query.attrs)
    binding: Dict[str, object] = {}
    candidates = 0

    def recurse(idx: int, interval: Interval) -> None:
        nonlocal candidates
        if idx == len(names):
            out.append(tuple(binding[a] for a in query.attrs), interval)
            return
        name = names[idx]
        attrs = edge_attrs[name]
        for values, ivl in db[name]:
            candidates += 1
            ok = True
            added: List[str] = []
            for attr, value in zip(attrs, values):
                if attr in binding:
                    if binding[attr] != value:
                        ok = False
                        break
                else:
                    binding[attr] = value
                    added.append(attr)
            if ok:
                joint = interval.intersect(ivl)
                if joint is not None:
                    recurse(idx + 1, joint)
            for attr in added:
                del binding[attr]

    recurse(0, Interval.always())
    if stats is not None:
        stats.incr("naive.candidates", candidates)
        stats.incr("results", len(out))
    half = tau / 2 if tau else 0
    return out.expand_intervals(half)


def naive_nontemporal_join(
    query: JoinQuery, database: Mapping[str, TemporalRelation]
) -> List[Tuple[object, ...]]:
    """Value-only join (temporal predicate ignored), for JOINFIRST tests."""
    query.validate(database)
    names = query.edge_names
    edge_attrs = {name: query.edge(name) for name in names}
    results: List[Tuple[object, ...]] = []
    binding: Dict[str, object] = {}

    def recurse(idx: int) -> None:
        if idx == len(names):
            results.append(tuple(binding[a] for a in query.attrs))
            return
        name = names[idx]
        attrs = edge_attrs[name]
        for values, _ in database[name]:
            ok = True
            added: List[str] = []
            for attr, value in zip(attrs, values):
                if attr in binding:
                    if binding[attr] != value:
                        ok = False
                        break
                else:
                    binding[attr] = value
                    added.append(attr)
            if ok:
                recurse(idx + 1)
            for attr in added:
                del binding[attr]

    recurse(0)
    return results
