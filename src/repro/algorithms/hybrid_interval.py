"""HYBRID-INTERVAL / HybridGuarded (Algorithm 6) with the interval-join
shortcut of Section 4.2.

On a guarded GHD the bag materialization of Algorithm 5 collapses: all
bags share the core attributes ``J = ∩_u λ_u``; solving the core query
``Q_J`` once (GenericJoin over projections) yields the tuples ``L``, and
every ``a ∈ L`` induces a *residual* join over ``I = V − J`` among the
rows of the residual relations that match ``a`` on their ``J``
attributes. The paper solves the residual with TIMEFIRST in general, and
— when the residual is a Cartesian product of exactly two groups — with a
plane-sweep *interval join*, improving line-3 joins to ``O(N^1.5 + K)``.

This module implements all three residual strategies:

* two product groups → lazy-sweep interval join (gapless active sets,
  see :mod:`repro.algorithms.allen`; the paper used the forward scan);
* k ≥ 3 product groups → a dedicated multi-way sweep (the residual query
  is hierarchical, so this is the §3.2 machinery specialized to disjoint
  unary groups);
* anything else → a recursive TIMEFIRST call on the residual query.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.durability import shrink_database
from ..core.errors import PlanError
from ..core.hypergraph import Hypergraph
from ..core.interval import Interval, Number, intersect_all
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..nontemporal.generic_join import generic_join_with_order
from ..nontemporal.ghd import GuardedPartition, find_guarded_partition
from ..obs import ExecutionStats
from .allen import lazy_sweep_join

Values = Tuple[object, ...]


def hybrid_interval_join(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    partition: Optional[GuardedPartition] = None,
    residual_strategy: str = "auto",
    stats: Optional[ExecutionStats] = None,
) -> JoinResultSet:
    """Evaluate a τ-durable temporal join with HybridGuarded.

    ``residual_strategy`` selects how per-core-tuple residual joins are
    solved: ``"auto"`` (interval join for two product groups, product
    sweep for more, recursive TIMEFIRST otherwise), or ``"sweep"`` to
    force the recursive TIMEFIRST everywhere — the ablation knob that
    isolates the §4.2 interval-join improvement.

    ``stats`` opts into telemetry: ``hi.core_tuples`` (|L| from the core
    GenericJoin), ``hi.core_pruned`` (core tuples that died on interval
    or group checks), per-residual-strategy counters
    (``hi.interval_joins`` / ``hi.product_sweeps`` / ``hi.recursions``),
    ``ij.scan`` (interval-join input scan lengths) and ``ij.pairs``
    (overlapping pairs reported), plus ``phase.core_join`` /
    ``phase.residuals`` timers and the final ``results`` count.

    Raises :class:`PlanError` when the query admits no guarded partition
    (e.g. cycle joins) — the planner falls back to HYBRID there.
    """
    if residual_strategy not in ("auto", "sweep"):
        raise PlanError(f"unknown residual strategy {residual_strategy!r}")
    query.validate(database)
    hg = query.hypergraph
    if partition is None:
        partition = find_guarded_partition(hg)
    if partition is None:
        raise PlanError(
            f"{query!r} admits no guarded partition; use hybrid_join instead"
        )
    db = shrink_database(database, tau)

    j_set = set(partition.J)
    i_attrs = list(partition.I)

    # ------------------------------------------------------------------
    # Line 2: L <- GenericJoin(Q_J, {π_J R_e | e ∈ E_J})
    # ------------------------------------------------------------------
    qj_edges: Dict[str, Tuple[str, ...]] = {}
    qj_db: Dict[str, TemporalRelation] = {}
    for name in hg.edge_names:
        eattrs = hg.edge(name)
        restricted = tuple(a for a in eattrs if a in j_set)
        if not restricted:
            continue
        qj_edges[name] = restricted
        rel = db[name]
        pos = rel.positions(restricted)
        rows = {}
        for v, _ in rel:
            rows[tuple(v[p] for p in pos)] = Interval.always()
        sub = TemporalRelation(name, restricted, check_distinct=False)
        sub._rows = list(rows.items())
        qj_db[name] = sub
    if stats is None:
        core_tuples, j_order = generic_join_with_order(Hypergraph(qj_edges), qj_db)
    else:
        with stats.timer("phase.core_join"):
            core_tuples, j_order = generic_join_with_order(
                Hypergraph(qj_edges), qj_db
            )
        stats.incr("hi.core_tuples", len(core_tuples))
    j_pos = {a: i for i, a in enumerate(j_order)}

    # Interval lookup for core edges (fully inside J): line 4.
    core_lookups: List[Tuple[Tuple[int, ...], Dict[Values, Interval]]] = []
    for name in partition.core_edges:
        eattrs = hg.edge(name)
        rel = db[name]
        pos = rel.positions(eattrs)
        index = {tuple(v[p] for p in pos): ivl for v, ivl in rel}
        core_lookups.append((tuple(j_pos[a] for a in eattrs), index))

    # Residual relations grouped by their J-part: lines 5-6, done once.
    residual_plans = []
    for name in partition.residual_edges:
        eattrs = hg.edge(name)
        rel = db[name]
        j_part = [a for a in eattrs if a in j_set]
        i_part = [a for a in eattrs if a not in j_set]
        groups_raw = rel.group_by(j_part)
        i_positions = rel.positions(i_part)
        groups: Dict[Values, List[Tuple[Values, Interval]]] = {}
        for key, rows in groups_raw.items():
            groups[key] = [
                (tuple(v[p] for p in i_positions), ivl) for v, ivl in rows
            ]
        probe = tuple(j_pos[a] for a in j_part)
        residual_plans.append((name, tuple(i_part), probe, groups))

    # Residual attribute layout for output assembly.
    out_attrs = query.attrs
    out = JoinResultSet(out_attrs)
    product = partition.residual_product

    # ------------------------------------------------------------------
    # Lines 3-8: per core tuple, solve the residual join.
    # ------------------------------------------------------------------
    residuals_start = time.perf_counter()
    for a in core_tuples:
        core_interval = Interval.always()
        dead = False
        for pos, index in core_lookups:
            ivl = index[tuple(a[p] for p in pos)]
            core_interval = core_interval.intersect(ivl)
            if core_interval is None:
                dead = True
                break
        if not dead:
            groups_for_a: List[Tuple[str, Tuple[str, ...], List[Tuple[Values, Interval]]]] = []
            for name, i_part, probe, groups in residual_plans:
                rows = groups.get(tuple(a[p] for p in probe))
                if not rows:
                    dead = True
                    break
                # Clip to the core interval, pruning rows that cannot join.
                clipped = []
                for values, ivl in rows:
                    joint = ivl.intersect(core_interval)
                    if joint is not None:
                        clipped.append((values, joint))
                if not clipped:
                    dead = True
                    break
                groups_for_a.append((name, i_part, clipped))
        if dead:
            if stats is not None:
                stats.incr("hi.core_pruned")
            continue

        if residual_strategy == "sweep":
            if stats is not None:
                stats.incr("hi.recursions")
            _emit_residual_timefirst(
                query, hg, j_order, a, groups_for_a, i_attrs, out
            )
        elif product and len(groups_for_a) == 2:
            if stats is not None:
                stats.incr("hi.interval_joins")
            _emit_interval_join(query, j_order, a, groups_for_a, out, stats=stats)
        elif product:
            if stats is not None:
                stats.incr("hi.product_sweeps")
            _emit_product_sweep(query, j_order, a, groups_for_a, out)
        else:
            if stats is not None:
                stats.incr("hi.recursions")
            _emit_residual_timefirst(
                query, hg, j_order, a, groups_for_a, i_attrs, out
            )

    if stats is not None:
        stats.add_time("phase.residuals", time.perf_counter() - residuals_start)
        stats.incr("results", len(out))
    return out.expand_intervals(tau / 2 if tau else 0)


# ----------------------------------------------------------------------
# Residual strategies
# ----------------------------------------------------------------------
def _assemble_row(
    query: JoinQuery,
    j_order: Sequence[str],
    core: Values,
    residual_binding: Mapping[str, object],
) -> Values:
    core_map = dict(zip(j_order, core))
    return tuple(
        core_map[a] if a in core_map else residual_binding[a] for a in query.attrs
    )


def _emit_interval_join(
    query: JoinQuery,
    j_order: Sequence[str],
    core: Values,
    groups: List[Tuple[str, Tuple[str, ...], List[Tuple[Values, Interval]]]],
    out: JoinResultSet,
    stats: Optional[ExecutionStats] = None,
) -> None:
    """Two disjoint residual groups: a single lazy-sweep interval join."""
    (_, left_attrs, left_rows), (_, right_attrs, right_rows) = groups
    pairs = lazy_sweep_join(left_rows, right_rows)
    if stats is not None:
        stats.observe("ij.scan", len(left_rows) + len(right_rows))
        stats.observe("ij.pairs", len(pairs))
    for lvalues, rvalues, interval in pairs:
        binding = dict(zip(left_attrs, lvalues))
        binding.update(zip(right_attrs, rvalues))
        out.append(_assemble_row(query, j_order, core, binding), interval)


def _emit_product_sweep(
    query: JoinQuery,
    j_order: Sequence[str],
    core: Values,
    groups: List[Tuple[str, Tuple[str, ...], List[Tuple[Values, Interval]]]],
    out: JoinResultSet,
) -> None:
    """k ≥ 3 disjoint residual groups: sweep enumerating live combinations.

    Events over all group rows' endpoints; at each row's right endpoint,
    combinations of live rows from the *other* groups are enumerated with
    that row — the §3.2 algorithm specialized to a star-free product, kept
    output-sensitive by the per-group liveness check.
    """
    events = []
    for gi, (_, attrs, rows) in enumerate(groups):
        for values, ivl in rows:
            events.append((ivl.lo, 0, gi, values, ivl))
            events.append((ivl.hi, 1, gi, values, ivl))
    events.sort(key=lambda e: (e[0], e[1]))
    live: List[Dict[Values, Interval]] = [dict() for _ in groups]
    for _, kind, gi, values, ivl in events:
        if kind == 0:
            live[gi][values] = ivl
            continue
        # Expiring row: enumerate combinations across the other groups.
        if all(live[k] for k in range(len(groups))):
            partial: List[Tuple[Dict[str, object], Interval]] = [
                (dict(zip(groups[gi][1], values)), ivl)
            ]
            for k, (_, attrs, _rows) in enumerate(groups):
                if k == gi:
                    continue
                new = []
                for binding, interval in partial:
                    for ovalues, oivl in live[k].items():
                        joint = interval.intersect(oivl)
                        if joint is None:
                            continue
                        merged = dict(binding)
                        merged.update(zip(attrs, ovalues))
                        new.append((merged, joint))
                partial = new
                if not partial:
                    break
            for binding, interval in partial:
                out.append(_assemble_row(query, j_order, core, binding), interval)
        del live[gi][values]


def _emit_residual_timefirst(
    query: JoinQuery,
    hg: Hypergraph,
    j_order: Sequence[str],
    core: Values,
    groups: List[Tuple[str, Tuple[str, ...], List[Tuple[Values, Interval]]]],
    i_attrs: List[str],
    out: JoinResultSet,
) -> None:
    """General residual: recursive TIMEFIRST on Q_I (Algorithm 6, line 7)."""
    from .timefirst import timefirst_join

    residual_edges = {name: attrs for name, attrs, _ in groups}
    residual_query = JoinQuery(residual_edges)
    residual_db = {}
    for name, attrs, rows in groups:
        rel = TemporalRelation(name, attrs, check_distinct=False)
        rel._rows = list(rows)
        residual_db[name] = rel
    sub = timefirst_join(residual_query, residual_db)
    for values, interval in sub:
        binding = dict(zip(residual_query.attrs, values))
        out.append(_assemble_row(query, j_order, core, binding), interval)
