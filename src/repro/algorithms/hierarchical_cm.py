"""The §3.2 structure in the paper's comparison model.

:class:`~repro.algorithms.hierarchical.HierarchicalState` realizes the
Theorem 6 structure with hash maps (expected O(1) per step). The paper's
own description is comparison-based: "the set of distinct values over
attributes ``V_{p(u)}`` are stored in a binary-search tree as indexes.
Moreover, tuples in ``X_u(t)`` with the same value over attributes
``V_{p(u)}`` are stored in a min-heap by ``t_a^+``" — O(log N) per step,
O(N log N + K) overall.

:class:`ComparisonHierarchicalState` is that literal variant:

* per node, one sorted index (:class:`SortedList`) of member tuples,
  ordered lexicographically so each parent-key group is a contiguous
  run — the BST of the paper;
* support counts as a sorted *multiset* of keys (count = multiplicity);
* per leaf group, an addressable min-heap of active tuples keyed by
  their right endpoint — the paper's ``t^+`` heaps, which also expose
  :meth:`earliest_expiry` for introspection;
* no hash map touches a tuple value on the hot path (auxiliary
  per-group heap registry aside), so attribute domains must be totally
  ordered and mutually comparable within each attribute.

It is differential-tested against the hashed state and the oracle, and
an ablation bench compares their constants. Use the hashed state in
production; this one exists for fidelity and as the reference for the
complexity claims.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.classification import AttributeTree
from ..core.errors import QueryError
from ..core.interval import Interval, Number
from ..core.query import JoinQuery
from ..core.result import JoinResultSet
from ..datastructures.heap import AddressableHeap
from ..datastructures.sorted_list import SortedList
from ..obs import ExecutionStats

Values = Tuple[object, ...]
Fragment = Tuple[Dict[str, object], Interval]


class _SortedNodeState:
    """Per-node sorted containers (see module docstring)."""

    __slots__ = ("members", "support", "heaps")

    def __init__(self, is_leaf: bool) -> None:
        # Leaf: rows (pv, Interval); internal: member tuples over V_u.
        self.members: SortedList = SortedList()
        # Internal only: multiset of V_u keys; multiplicity = #children
        # currently offering the key.
        self.support: Optional[SortedList] = None if is_leaf else SortedList()
        # Leaf only: per-group min-heaps by right endpoint.
        self.heaps: Optional[Dict[Values, AddressableHeap]] = {} if is_leaf else None


def _group_run(members: SortedList, prefix: Values) -> List:
    """All entries whose first ``len(prefix)`` fields equal ``prefix``.

    Entries are flat tuples — internal-node member keys, or leaf rows
    laid out as ``path values + (interval,)`` — so lexicographic order
    makes each group a contiguous run, found with one bisect plus a scan
    bounded by the run length.
    """
    start = members.index_left(prefix)
    out = []
    for i in range(start, len(members)):
        entry = members[i]
        if entry[: len(prefix)] != prefix:
            break
        out.append(entry)
    return out


class ComparisonHierarchicalState:
    """Sweep state for Theorem 6 in the comparison model (O(log N) steps).

    With a ``stats`` tracer attached, reports ``cm.heap_pushes`` /
    ``cm.heap_removes`` (the paper's per-group t⁺ heaps),
    ``cm.support_updates`` (sorted-multiset propagation steps) and
    ``cm.report_fragments``.
    """

    def __init__(
        self, query: JoinQuery, stats: Optional[ExecutionStats] = None
    ) -> None:
        if not query.is_hierarchical:
            raise QueryError(
                f"ComparisonHierarchicalState requires a hierarchical query, "
                f"got {query!r}"
            )
        self.query = query
        self.tree = AttributeTree(query.hypergraph)
        nodes = self.tree.nodes
        self._state = [_SortedNodeState(node.is_leaf) for node in nodes]
        self._nchildren = [len(node.children) for node in nodes]
        self._path_len = [len(node.path_attrs) for node in nodes]
        self._parent_path_len = [
            0 if node.parent is None else len(nodes[node.parent].path_attrs)
            for node in nodes
        ]
        self._leaf_id = dict(self.tree.leaf_of_relation)
        self._perm = {}
        for name, leaf in self._leaf_id.items():
            eattrs = query.edge(name)
            pos = {a: i for i, a in enumerate(eattrs)}
            self._perm[name] = tuple(
                pos[a] for a in nodes[leaf].path_attrs
            )
        self._out_attrs = query.attrs
        self._seq = 0
        self._stats = stats

    # ------------------------------------------------------------------
    def _path_values(self, relation: str, values: Values) -> Values:
        return tuple(values[i] for i in self._perm[relation])

    def insert(self, relation: str, values: Values, interval: Interval) -> None:
        leaf = self._leaf_id[relation]
        pv = self._path_values(relation, values)
        state = self._state[leaf]
        gkey = pv[: self._parent_path_len[leaf]]
        was_empty = not self._leaf_group_nonempty(leaf, gkey)
        state.members.add(pv + (interval,))
        heap = state.heaps.get(gkey)
        if heap is None:
            heap = AddressableHeap()
            state.heaps[gkey] = heap
        heap.push((interval.hi, self._seq), pv)
        self._seq += 1
        if self._stats is not None:
            self._stats.incr("cm.heap_pushes")
        if was_empty:
            self._signal_nonempty(self.tree.nodes[leaf].parent, gkey)

    def delete(self, relation: str, values: Values, interval: Interval) -> None:
        leaf = self._leaf_id[relation]
        pv = self._path_values(relation, values)
        state = self._state[leaf]
        gkey = pv[: self._parent_path_len[leaf]]
        state.members.remove(pv + (interval,))
        heap = state.heaps[gkey]
        heap.remove(pv)
        if self._stats is not None:
            self._stats.incr("cm.heap_removes")
        if not heap:
            del state.heaps[gkey]
            self._signal_empty(self.tree.nodes[leaf].parent, gkey)

    def earliest_expiry(self, relation: str, group_key: Values) -> Optional[Number]:
        """The paper's heap query: smallest active t⁺ in a leaf group."""
        leaf = self._leaf_id[relation]
        heap = self._state[leaf].heaps.get(group_key)
        if not heap:
            return None
        (t_plus, _), _ = heap.peek()
        return t_plus

    # ------------------------------------------------------------------
    def _leaf_group_nonempty(self, leaf: int, gkey: Values) -> bool:
        return gkey in self._state[leaf].heaps

    def _member_present(self, node_id: int, key: Values) -> bool:
        support = self._state[node_id].support
        return support.count_range(key, key) == self._nchildren[node_id]

    def _group_nonempty(self, node_id: int, gkey: Values) -> bool:
        """Does node ``node_id`` have an X_u member with parent key gkey?"""
        node = self.tree.nodes[node_id]
        if node.is_leaf:
            return self._leaf_group_nonempty(node_id, gkey)
        members = self._state[node_id].members
        start = members.index_left(gkey)
        return (
            start < len(members)
            and members[start][: len(gkey)] == gkey
        )

    def _signal_nonempty(self, node_id: Optional[int], key: Values) -> None:
        st = self._stats
        while node_id is not None:
            if st is not None:
                st.incr("cm.support_updates")
            state = self._state[node_id]
            state.support.add(key)
            if state.support.count_range(key, key) != self._nchildren[node_id]:
                return
            gkey = key[: self._parent_path_len[node_id]]
            group_was_empty = not self._group_nonempty(node_id, gkey)
            state.members.add(key)
            if not group_was_empty:
                return
            node_id = self.tree.nodes[node_id].parent
            key = gkey

    def _signal_empty(self, node_id: Optional[int], key: Values) -> None:
        st = self._stats
        while node_id is not None:
            if st is not None:
                st.incr("cm.support_updates")
            state = self._state[node_id]
            was_full = (
                state.support.count_range(key, key) == self._nchildren[node_id]
            )
            state.support.remove(key)
            if not was_full:
                return
            state.members.remove(key)
            gkey = key[: self._parent_path_len[node_id]]
            if self._group_nonempty(node_id, gkey):
                return
            node_id = self.tree.nodes[node_id].parent
            key = gkey

    # ------------------------------------------------------------------
    def enumerate_results(
        self,
        relation: str,
        values: Values,
        interval: Interval,
        out: JoinResultSet,
    ) -> None:
        leaf = self._leaf_id[relation]
        pv = self._path_values(relation, values)
        node_id = self.tree.nodes[leaf].parent
        while node_id is not None:
            key = pv[: self._path_len[node_id]]
            if not self._member_present(node_id, key):
                return
            node_id = self.tree.nodes[node_id].parent
        binding: Dict[str, object] = dict(
            zip(self.tree.nodes[leaf].path_attrs, pv)
        )
        fragments = self._report(self.tree.root.node_id, binding)
        if self._stats is not None:
            self._stats.incr("cm.report_fragments", len(fragments))
        for fragment, result_interval in fragments:
            row = tuple(
                fragment[a] if a in fragment else binding[a]
                for a in self._out_attrs
            )
            out.append(row, result_interval)

    def _report(self, node_id: int, binding: Dict[str, object]) -> List[Fragment]:
        node = self.tree.nodes[node_id]
        state = self._state[node_id]

        if node.is_leaf:
            glen = self._parent_path_len[node_id]
            path = node.path_attrs
            if node.attr is None or node.attr in binding:
                key = tuple(binding[a] for a in path)
                run = _group_run(state.members, key)
                return [({}, entry[-1]) for entry in run]
            gkey = tuple(binding[a] for a in path[:glen])
            run = _group_run(state.members, gkey)
            attr = node.attr
            return [({attr: entry[-2]}, entry[-1]) for entry in run]

        if node.attr is None or node.attr in binding:
            return self._product_of_children(node_id, binding)

        glen = self._parent_path_len[node_id]
        gkey = tuple(binding[a] for a in node.path_attrs[:glen])
        run = _group_run(state.members, gkey)
        results: List[Fragment] = []
        attr = node.attr
        for member in run:
            value = member[-1]
            binding[attr] = value
            for fragment, interval in self._product_of_children(node_id, binding):
                merged = dict(fragment)
                merged[attr] = value
                results.append((merged, interval))
            del binding[attr]
        return results

    def _product_of_children(
        self, node_id: int, binding: Dict[str, object]
    ) -> List[Fragment]:
        combined: List[Fragment] = [({}, Interval.always())]
        for child in self.tree.nodes[node_id].children:
            child_fragments = self._report(child, binding)
            if not child_fragments:
                return []
            new: List[Fragment] = []
            for fragment, interval in combined:
                for cfragment, civl in child_fragments:
                    joint = interval.intersect(civl)
                    if joint is None:
                        continue
                    if cfragment:
                        merged = dict(fragment)
                        merged.update(cfragment)
                    else:
                        merged = fragment
                    new.append((merged, joint))
            combined = new
            if not combined:
                return []
        return combined
