"""HYBRID (Algorithm 5): GHD bag materialization + one TIMEFIRST pass.

The join-first half materializes each GHD bag with GenericJoin over the
*whole* input; valid intervals are carried for relations fully contained
in the bag (Algorithm 5 line 6) and widened to ``(-inf, +inf)`` for
partial projections (line 7); bag tuples whose carried intervals already
fail to intersect are dropped (line 9). The time-first half then runs the
sweep once over the derived acyclic query of bags — with the §3.2
hierarchical structure when the bag query is hierarchical (the
hierarchical-GHD observation behind Theorem 12), or the §3.3 generic
state otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..core.durability import shrink_database
from ..core.errors import PlanError
from ..core.hypergraph import Hypergraph
from ..core.interval import Interval, Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..nontemporal.generic_join import generic_join_with_order
from ..nontemporal.ghd import GHD, fhtw_ghd, hhtw_ghd
from ..obs import ExecutionStats
from .timefirst import sweep

Values = Tuple[object, ...]


def materialize_bag(
    query_hg: Hypergraph,
    database: Mapping[str, TemporalRelation],
    bag_attrs: Tuple[str, ...],
    bag_name: str = "bag",
) -> TemporalRelation:
    """Materialize one GHD bag over ``database`` (Algorithm 5 lines 3-9).

    Returns a temporal relation over a permutation of ``bag_attrs`` whose
    rows are the GenericJoin results of the derived edges, carrying the
    intersection of the intervals of all fully contained relations.
    """
    lam_set = set(bag_attrs)
    derived: Dict[str, Tuple[str, ...]] = {}
    sub_db: Dict[str, TemporalRelation] = {}
    full_edges: List[str] = []
    for name, eattrs in query_hg.items():
        restricted = tuple(a for a in eattrs if a in lam_set)
        if not restricted:
            continue
        derived[name] = restricted
        rel = database[name]
        pos = rel.positions(restricted)
        if len(restricted) == len(eattrs):
            rows = {tuple(v[p] for p in pos): ivl for v, ivl in rel}
            full_edges.append(name)
        else:
            rows = {}
            for v, _ in rel:
                rows[tuple(v[p] for p in pos)] = Interval.always()
        sub = TemporalRelation(name, restricted, check_distinct=False)
        sub._rows = list(rows.items())
        sub_db[name] = sub
    sub_hg = Hypergraph(derived)
    tuples, order = generic_join_with_order(sub_hg, sub_db)
    order_pos = {a: i for i, a in enumerate(order)}
    lookups = []
    for name in full_edges:
        eattrs = derived[name]
        index = {v: ivl for v, ivl in sub_db[name]}
        lookups.append((tuple(order_pos[a] for a in eattrs), index))
    rows_out = []
    for t in tuples:
        interval = Interval.always()
        alive = True
        for pos, index in lookups:
            ivl = index[tuple(t[p] for p in pos)]
            interval = interval.intersect(ivl)
            if interval is None:
                alive = False
                break
        if alive:
            rows_out.append((t, interval))
    out = TemporalRelation(bag_name, order, check_distinct=False)
    out._rows = rows_out
    return out


def hybrid_join(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    ghd: Optional[GHD] = None,
    mode: str = "auto",
    track_intermediates: Optional[List[int]] = None,
    stats: Optional[ExecutionStats] = None,
) -> JoinResultSet:
    """Evaluate a τ-durable temporal join with HYBRID (Theorem 12).

    Parameters
    ----------
    ghd:
        Explicit decomposition; overrides ``mode``.
    mode:
        ``"auto"`` picks the decomposition minimizing the Theorem 12
        exponent ``min(fhtw + 1, hhtw)``; ``"fhtw"`` forces the fhtw GHD;
        ``"hierarchical"`` forces the hhtw (hierarchical) GHD.
    track_intermediates:
        Receives the materialized size of every bag, for the memory
        benches.
    stats:
        Opt-in telemetry (see :mod:`repro.obs`): ``hybrid.bags``,
        ``hybrid.bag_rows`` (per-bag materialized sizes), the
        ``phase.materialize`` timer, plus the sweep counters of the
        time-first half over the derived bag query.
    """
    query.validate(database)
    hg = query.hypergraph
    if ghd is None:
        ghd = select_hybrid_ghd(hg, mode)
    if ghd.is_trivial() and len(ghd.bags) == len(hg.edge_names):
        # Degenerate decomposition: HYBRID reduces to plain TIMEFIRST but
        # still runs through the same code path for uniformity.
        pass
    db = shrink_database(database, tau)
    bag_db: Dict[str, TemporalRelation] = {}
    if stats is None:
        for bag, lam in ghd.bags.items():
            rel = materialize_bag(hg, db, lam, bag_name=bag)
            if track_intermediates is not None:
                track_intermediates.append(len(rel))
            bag_db[bag] = rel
    else:
        with stats.timer("phase.materialize"):
            for bag, lam in ghd.bags.items():
                rel = materialize_bag(hg, db, lam, bag_name=bag)
                stats.incr("hybrid.bags")
                stats.observe("hybrid.bag_rows", len(rel))
                if track_intermediates is not None:
                    track_intermediates.append(len(rel))
                bag_db[bag] = rel
    bag_edges = {bag: bag_db[bag].attrs for bag in ghd.bags}
    bag_query = JoinQuery(bag_edges, attr_order=query.attrs)
    state = _bag_sweep_state(bag_query, bag_db, stats=stats)
    result = sweep(bag_query, bag_db, state, stats=stats)
    return result.expand_intervals(tau / 2 if tau else 0)


def select_hybrid_ghd(hg: Hypergraph, mode: str = "auto") -> GHD:
    """Pick the Theorem 12 decomposition for ``hg``."""
    if mode == "fhtw":
        return fhtw_ghd(hg)[1]
    if mode == "hierarchical":
        return hhtw_ghd(hg)[1]
    if mode != "auto":
        raise PlanError(f"unknown hybrid mode {mode!r}")
    f_width, f_ghd = fhtw_ghd(hg)
    h_width, h_ghd = hhtw_ghd(hg)
    return h_ghd if h_width <= f_width + 1 else f_ghd


def _bag_sweep_state(
    bag_query: JoinQuery,
    bag_db: Dict[str, TemporalRelation],
    stats: Optional[ExecutionStats] = None,
):
    from .generic_state import GenericGHDState
    from .hierarchical import HierarchicalState

    if bag_query.is_hierarchical:
        return HierarchicalState(bag_query, stats=stats)
    return GenericGHDState(bag_query, bag_db, stats=stats)
