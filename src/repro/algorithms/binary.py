"""Binary temporal joins: equality on shared attributes + interval overlap.

The paper's BASELINE evaluates a multi-way temporal join as a sequence of
binary temporal joins (Section 6.1), each "resorting to the forward-scan-
based algorithm [26]". A binary temporal join partitions both relations by
the shared-attribute key and runs a forward-scan interval join per key
group; with no shared attributes it is a single interval join (a temporal
Cartesian product).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.interval import Interval
from ..core.relation import TemporalRelation
from ..obs import ExecutionStats
from .interval_join import DEFAULT_STRATEGY, interval_join


def binary_temporal_join(
    left: TemporalRelation,
    right: TemporalRelation,
    name: Optional[str] = None,
    strategy: str = DEFAULT_STRATEGY,
    predicate: str = "overlaps",
    stats: Optional[ExecutionStats] = None,
) -> TemporalRelation:
    """``left ⋈ right`` on shared attributes + an interval predicate.

    Output schema: ``left.attrs`` + right-only attributes; output interval:
    the intersection of the joining pair's intervals (the gap interval for
    ``predicate="before"``). Output tuples are distinct because the
    constituent pair is recoverable from the values. ``strategy`` selects
    the per-key interval-join family (``lazy-sweep`` — the default since
    it beat the paper's forward scan [26] on the ratio-gated benchmark —
    ``forward-scan``, ``index``, or ``sort-merge``); ``predicate`` picks
    an extended Allen predicate or ``-or-`` union (lazy-sweep only;
    default ``overlaps`` matches the paper's implicit join predicate).
    """
    shared = [a for a in left.attrs if a in set(right.attrs)]
    right_extra = [a for a in right.attrs if a not in set(left.attrs)]
    right_extra_pos = right.positions(right_extra)
    out_attrs = tuple(left.attrs) + tuple(right_extra)
    out = TemporalRelation(
        name or f"({left.name} ⋈t {right.name})", out_attrs, check_distinct=False
    )
    rows: List[Tuple[Tuple[object, ...], Interval]] = []

    if shared:
        left_groups = left.group_by(shared)
        right_groups = right.group_by(shared)
        # Iterate the smaller dictionary and probe the larger.
        if len(left_groups) > len(right_groups):
            keys = (k for k in right_groups if k in left_groups)
        else:
            keys = (k for k in left_groups if k in right_groups)
        for key in keys:
            pairs = interval_join(
                [(v, ivl) for v, ivl in left_groups[key]],
                [(v, ivl) for v, ivl in right_groups[key]],
                strategy=strategy,
                predicate=predicate,
                stats=stats,
            )
            for lvalues, rvalues, interval in pairs:
                rows.append(
                    (
                        lvalues + tuple(rvalues[p] for p in right_extra_pos),
                        interval,
                    )
                )
    else:
        pairs = interval_join(
            list(left.rows),
            list(right.rows),
            strategy=strategy,
            predicate=predicate,
            stats=stats,
        )
        for lvalues, rvalues, interval in pairs:
            rows.append(
                (lvalues + tuple(rvalues[p] for p in right_extra_pos), interval)
            )
    out._rows = rows
    return out
