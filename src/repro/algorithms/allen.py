"""Cache-efficient lazy-sweep interval joins with extended Allen predicates.

The binary interval join is the hottest kernel in BASELINE (one
forward-scan per key group, footnote 6) and in HYBRID-INTERVAL's §4.2
residual shortcut — yet historically it answered exactly one predicate,
"overlaps". This module implements the sweeping scheme of Piatov, Helmer,
Dignös & Persia (arXiv:2008.12665) generalized to the *extended Allen
relation predicate* suite:

* **Gapless array-backed active sets.** Each side's currently open
  intervals live in a plain list of ``(hi, payload)`` tuples with no
  holes: an expired entry is removed by swapping the last entry into its
  slot (during the very scan that visits it), so enumeration is one
  forward pass over a dense array — the cache-efficiency trick of the
  paper, and the fix for the classic sort/merge join's rebuild-per-
  arrival expiry.
* **Lazy joining.** Pairs are produced from active-set snapshots at the
  sweep position where the predicate becomes decidable — arrival time
  for intersection-style predicates, expiry time for the ``finishes``
  family, the retired prefix for ``before`` — so every predicate is
  enumerated output-sensitively from the same endpoint-sorted pass.
* **One shared sort.** Atomic predicates and any ``-or-`` union of them
  are answered from a single endpoint-sorted event sweep; a union never
  re-sorts per member.

Predicates (``r`` = left item, ``s`` = right item; closed intervals):

=============  =====================================================
``overlaps``   nonempty intersection (touching counts) — the repo's
               historical join predicate and the default everywhere
``before``     ``r.hi < s.lo`` (strictly earlier, no touching)
``meets``      ``r.hi == s.lo``
``starts``     ``r.lo == s.lo`` and ``r.hi < s.hi``
``started-by`` ``r.lo == s.lo`` and ``r.hi > s.hi``
``finishes``   ``r.hi == s.hi`` and ``r.lo > s.lo``
``finished-by````r.hi == s.hi`` and ``r.lo < s.lo``
``during``     ``s.lo < r.lo`` and ``r.hi < s.hi`` (strictly inside)
``contains``   ``r.lo < s.lo`` and ``s.hi < r.hi``
``equals``     both endpoints equal
=============  =====================================================

Union predicates are spelled with ``-or-`` (``before-or-meets``,
``overlaps-or-meets``, ``during-or-equals`` …) and have set semantics: a
pair satisfying several members is reported once.

Every produced pair carries an interval: the intersection when the two
intervals share an instant (an instant ``[t, t]`` for ``meets``), and the
*gap* ``[r.hi, s.lo]`` for ``before`` — the quantity a compliance-window
query ("at least τ between release and audit") filters on.

Endpoint equality here compares *stored* endpoints verbatim (never
values produced by independent shrink/expand arithmetic), the exact
contract of :func:`repro.core.interval.endpoint_eq`; the sweeps unpack
endpoints into locals once per item and compare those.

Telemetry (``stats=``): ``allen.events``, ``allen.pairs``,
``allen.active_peak``, ``allen.expiries``, ``allen.atoms`` — see the
DESIGN.md counter glossary.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..core.errors import QueryError
from ..core.interval import Interval, Number
from ..obs import ExecutionStats

A = TypeVar("A")
B = TypeVar("B")
Item = Tuple[A, Interval]
Pair = Tuple[A, B, Interval]

#: ``(payload, lo, hi)`` — items with endpoints unpacked into the tuple,
#: so the sweep's inner loops never touch an attribute.
_Unpacked = Tuple[object, Number, Number]

_BY_LO_HI = itemgetter(1, 2)

_object_new = object.__new__
_object_setattr = object.__setattr__


# ----------------------------------------------------------------------
# Predicate registry
# ----------------------------------------------------------------------
class AllenAtom:
    """One atomic extended-Allen predicate: a name plus its truth test.

    ``holds(llo, lhi, slo, shi)`` is the O(1) definition on raw
    endpoints — the oracle the sweeps are tested against, and the
    suppression check union evaluation uses for set semantics.
    """

    __slots__ = ("name", "holds")

    def __init__(
        self, name: str, holds: Callable[[Number, Number, Number, Number], bool]
    ) -> None:
        self.name = name
        self.holds = holds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AllenAtom({self.name!r})"


ATOMS: Dict[str, AllenAtom] = {
    atom.name: atom
    for atom in (
        AllenAtom("overlaps", lambda llo, lhi, slo, shi:
                  (llo if llo > slo else slo) <= (lhi if lhi < shi else shi)),
        AllenAtom("before", lambda llo, lhi, slo, shi: lhi < slo),
        AllenAtom("meets", lambda llo, lhi, slo, shi: lhi == slo),
        AllenAtom("starts", lambda llo, lhi, slo, shi:
                  llo == slo and lhi < shi),
        AllenAtom("started-by", lambda llo, lhi, slo, shi:
                  llo == slo and lhi > shi),
        AllenAtom("finishes", lambda llo, lhi, slo, shi:
                  lhi == shi and llo > slo),
        AllenAtom("finished-by", lambda llo, lhi, slo, shi:
                  lhi == shi and llo < slo),
        AllenAtom("during", lambda llo, lhi, slo, shi:
                  slo < llo and lhi < shi),
        AllenAtom("contains", lambda llo, lhi, slo, shi:
                  llo < slo and shi < lhi),
        AllenAtom("equals", lambda llo, lhi, slo, shi:
                  llo == slo and lhi == shi),
    )
}


def predicate_names() -> List[str]:
    """Atomic predicate names (sorted); unions join them with ``-or-``."""
    return sorted(ATOMS)


def parse_predicate(predicate: str) -> Tuple[str, ...]:
    """Split a predicate spec into its atomic members, validated.

    ``"overlaps"`` → ``("overlaps",)``; ``"before-or-meets"`` →
    ``("before", "meets")``. Atom names containing dashes are unambiguous
    because ``-or-`` never occurs inside one. Duplicate members collapse
    (first occurrence wins). Raises :class:`QueryError` naming the valid
    atoms on any unknown member.
    """
    if not isinstance(predicate, str) or not predicate:
        raise QueryError(
            f"predicate must be a non-empty string, got {predicate!r}; "
            f"choose from {predicate_names()} or '-or-' unions of them"
        )
    seen: List[str] = []
    for part in predicate.split("-or-"):
        if part not in ATOMS:
            raise QueryError(
                f"unknown interval predicate {part!r} in {predicate!r}; "
                f"choose from {predicate_names()} "
                "(combine with '-or-', e.g. 'before-or-meets')"
            )
        if part not in seen:
            seen.append(part)
    return tuple(seen)


def pair_interval(llo: Number, lhi: Number, slo: Number, shi: Number) -> Tuple[Number, Number]:
    """Endpoints of the interval a produced pair carries.

    Intersection when the intervals share an instant; the gap
    ``[lhi, slo]`` otherwise (only ``before`` pairs reach that branch —
    ``meets`` pairs intersect at the touching instant).
    """
    lo = llo if llo > slo else slo
    hi = lhi if lhi < shi else shi
    if lo <= hi:
        return lo, hi
    return lhi, slo


def _unpack(items: Sequence[Item]) -> List[_Unpacked]:
    """Sort items by ``(lo, hi)`` with endpoints hoisted out of Interval."""
    out = [(payload, ivl.lo, ivl.hi) for payload, ivl in items]
    out.sort(key=_BY_LO_HI)
    return out


# ----------------------------------------------------------------------
# The hot path: pure "overlaps" via the lazy arrival sweep
# ----------------------------------------------------------------------
def _overlap_sweep(
    ls: List[Tuple[object, Number, Number, Interval]],
    rs: List[Tuple[object, Number, Number, Interval]],
    out: List[Pair],
    stats: Optional[ExecutionStats] = None,
) -> None:
    """All intersecting pairs from two ``(lo, hi)``-sorted 4-tuple lists.

    Inputs are ``(payload, lo, hi, interval)`` sorted by ``(lo, hi)``.
    Merge by start; an arriving item is paired against the other side's
    active set in one forward pass that *compacts as it scans*: an entry
    whose ``hi`` precedes the newcomer's ``lo`` is swap-removed (last
    entry fills the hole) without breaking the pass — the gapless-array
    expiry of Piatov et al., amortized O(1) per expiry, zero extra
    passes. Each pair is produced exactly once, at the later arrival
    (ties go to the left side, like the forward scan).

    Two construction shortcuts keep the per-pair cost minimal: when the
    active partner outlives the newcomer the intersection *is* the
    newcomer's own (immutable) interval, which is reused untouched; the
    truncated case builds the interval inline without ``__init__``
    validation (safe: both endpoints come from validated intervals and
    ``lo <= hi`` holds because the pair intersects).
    """
    track = stats is not None
    peak = 0
    expiries = 0
    active_l: List[Tuple[Number, object]] = []
    active_r: List[Tuple[Number, object]] = []
    append_l = active_l.append
    append_r = active_r.append
    emit = out.append
    new = _object_new
    put = _object_setattr
    cls = Interval
    i = j = 0
    nl, nr = len(ls), len(rs)
    while True:
        if i < nl and (j >= nr or ls[i][1] <= rs[j][1]):
            lpay, llo, lhi, livl = ls[i]
            i += 1
            k = 0
            end = len(active_r)
            while k < end:
                rhi, rpay = active_r[k]
                if rhi < llo:
                    end -= 1
                    active_r[k] = active_r[end]
                    continue
                if rhi >= lhi:
                    emit((lpay, rpay, livl))
                else:
                    iv = new(cls)
                    put(iv, "lo", llo)
                    put(iv, "hi", rhi)
                    emit((lpay, rpay, iv))
                k += 1
            if end != len(active_r):
                if track:
                    expiries += len(active_r) - end
                del active_r[end:]
            append_l((lhi, lpay))
        elif j < nr:
            rpay, rlo, rhi, rivl = rs[j]
            j += 1
            k = 0
            end = len(active_l)
            while k < end:
                lhi, lpay = active_l[k]
                if lhi < rlo:
                    end -= 1
                    active_l[k] = active_l[end]
                    continue
                if lhi >= rhi:
                    emit((lpay, rpay, rivl))
                else:
                    iv = new(cls)
                    put(iv, "lo", rlo)
                    put(iv, "hi", lhi)
                    emit((lpay, rpay, iv))
                k += 1
            if end != len(active_l):
                if track:
                    expiries += len(active_l) - end
                del active_l[end:]
            append_r((rhi, rpay))
        else:
            break
        if track:
            depth = len(active_l) + len(active_r)
            if depth > peak:
                peak = depth
    if track:
        stats.incr("allen.events", 2 * (nl + nr))
        stats.incr("allen.expiries", expiries)
        stats.peak("allen.active_peak", peak)


def _overlap_sweep_ranked(
    ls: List[Tuple[object, int, int]],
    rs: List[Tuple[object, int, int]],
    times: Sequence[Number],
    out: List[Pair],
    stats: Optional[ExecutionStats] = None,
) -> None:
    """The overlap sweep over *rank-space* endpoints (kernel fast path).

    Identical control flow to :func:`_overlap_sweep`, but ``lo``/``hi``
    are endpoint ranks (dense ints from
    :class:`~repro.kernels.columns.KernelColumns`) and the emitted
    interval endpoints are looked up in ``times`` at the last moment.
    Rank compression is order- and equality-preserving, so every
    comparison is exact; integer compares keep the inner loop branchier-
    friendly than float/object compares — this is what lets the kernel
    and prepared engines run the predicate join without materializing a
    single object row.
    """
    track = stats is not None
    peak = 0
    expiries = 0
    active_l: List[Tuple[int, object]] = []
    active_r: List[Tuple[int, object]] = []
    append_l = active_l.append
    append_r = active_r.append
    emit = out.append
    new = _object_new
    put = _object_setattr
    cls = Interval
    i = j = 0
    nl, nr = len(ls), len(rs)
    while True:
        if i < nl and (j >= nr or ls[i][1] <= rs[j][1]):
            lpay, llo, lhi = ls[i]
            i += 1
            # The newcomer's own interval, built once and shared by every
            # partner that outlives it.
            livl = new(cls)
            put(livl, "lo", times[llo])
            put(livl, "hi", times[lhi])
            k = 0
            end = len(active_r)
            while k < end:
                rhi, rpay = active_r[k]
                if rhi < llo:
                    end -= 1
                    active_r[k] = active_r[end]
                    continue
                if rhi >= lhi:
                    emit((lpay, rpay, livl))
                else:
                    iv = new(cls)
                    put(iv, "lo", times[llo])
                    put(iv, "hi", times[rhi])
                    emit((lpay, rpay, iv))
                k += 1
            if end != len(active_r):
                if track:
                    expiries += len(active_r) - end
                del active_r[end:]
            append_l((lhi, lpay))
        elif j < nr:
            rpay, rlo, rhi = rs[j]
            j += 1
            rivl = new(cls)
            put(rivl, "lo", times[rlo])
            put(rivl, "hi", times[rhi])
            k = 0
            end = len(active_l)
            while k < end:
                lhi, lpay = active_l[k]
                if lhi < rlo:
                    end -= 1
                    active_l[k] = active_l[end]
                    continue
                if lhi >= rhi:
                    emit((lpay, rpay, rivl))
                else:
                    iv = new(cls)
                    put(iv, "lo", times[rlo])
                    put(iv, "hi", times[lhi])
                    emit((lpay, rpay, iv))
                k += 1
            if end != len(active_l):
                if track:
                    expiries += len(active_l) - end
                del active_l[end:]
            append_r((rhi, rpay))
        else:
            break
        if track:
            depth = len(active_l) + len(active_r)
            if depth > peak:
                peak = depth
    if track:
        stats.incr("allen.events", 2 * (nl + nr))
        stats.incr("allen.expiries", expiries)
        stats.peak("allen.active_peak", peak)


# ----------------------------------------------------------------------
# The general engine: one endpoint-event sweep, any atom set
# ----------------------------------------------------------------------
def _event_sweep(
    ls: List[_Unpacked],
    rs: List[_Unpacked],
    atoms: Sequence[str],
    stats: Optional[ExecutionStats] = None,
) -> List[Tuple[object, object, Number, Number]]:
    """Raw pairs ``(lpay, rpay, lo, hi)`` for a set of atomic predicates.

    One endpoint-sorted event pass shared by every requested atom.
    Events at one sweep position are processed as a batch: the position's
    arrival/expiry groups per side (``LS``/``RS``/``LE``/``RE``) plus the
    gapless active arrays give each atom exactly the snapshot it needs:

    * start-aligned atoms (``starts``/``started-by``/``equals``) read
      ``LS × RS``;
    * end-aligned atoms (``finishes``/``finished-by``) read ``LE × RE``;
    * ``meets`` reads ``LE × RS`` (left expiring exactly where a right
      starts);
    * ``before`` pairs each arriving right with the *retired* left
      prefix (everything expired at a strictly earlier position) —
      output-sensitive even though the relation itself is quadratic;
    * ``overlaps``/``during``/``contains`` scan the other side's active
      array at arrival, filtering on the strict-containment endpoints.

    Union semantics: a pair satisfying several atoms is emitted only by
    the first satisfied atom in ``atoms`` order (the others suppress it
    via the O(1) ``holds`` check), so the result is a set union without
    a seen-hash over the output.

    Works unchanged over real endpoints and over rank-space ints — the
    caller maps emitted endpoints to intervals.
    """
    track = stats is not None
    want = [ATOMS[name] for name in atoms]
    earlier = {
        name: [ATOMS[prev].holds for prev in atoms[:idx]]
        for idx, name in enumerate(atoms)
    }
    out: List[Tuple[object, object, Number, Number]] = []

    # One shared sort: every endpoint of both sides, arrivals before
    # expiries at equal positions (touching counts), left before right,
    # input order breaking the remaining ties deterministically.
    events: List[Tuple[Number, int, int, int]] = []
    append_event = events.append
    for idx, (_, lo, hi) in enumerate(ls):
        append_event((lo, 0, 0, idx))
        append_event((hi, 1, 0, idx))
    for idx, (_, lo, hi) in enumerate(rs):
        append_event((lo, 0, 1, idx))
        append_event((hi, 1, 1, idx))
    events.sort(key=lambda e: (e[0], e[1], e[2], e[3]))

    active_l: List[Tuple[int, object, Number, Number]] = []
    active_r: List[Tuple[int, object, Number, Number]] = []
    pos_l = [-1] * len(ls)
    pos_r = [-1] * len(rs)
    retired_l: List[Tuple[object, Number, Number]] = []

    names = frozenset(atoms)
    peak = 0
    expiries = 0

    def emit(atom_name: str, lpay, llo, lhi, rpay, slo, shi) -> None:
        for holds in earlier[atom_name]:
            if holds(llo, lhi, slo, shi):
                return
        out.append((lpay, rpay) + pair_interval(llo, lhi, slo, shi))

    n_events = len(events)
    pos = 0
    while pos < n_events:
        t = events[pos][0]
        batch_end = pos
        ls_batch: List[int] = []
        rs_batch: List[int] = []
        le_batch: List[int] = []
        re_batch: List[int] = []
        while batch_end < n_events and events[batch_end][0] == t:
            _, kind, side, idx = events[batch_end]
            if kind == 0:
                (ls_batch if side == 0 else rs_batch).append(idx)
            else:
                (le_batch if side == 0 else re_batch).append(idx)
            batch_end += 1
        pos = batch_end

        # -- production, against pre-batch active sets and the batches --
        if "before" in names and rs_batch and retired_l:
            # Every retired left expired strictly before t == s.lo.
            for ridx in rs_batch:
                rpay, slo, shi = rs[ridx]
                for lpay, llo, lhi in retired_l:
                    emit("before", lpay, llo, lhi, rpay, slo, shi)
        if "meets" in names and le_batch and rs_batch:
            for lidx in le_batch:
                lpay, llo, lhi = ls[lidx]
                for ridx in rs_batch:
                    rpay, slo, shi = rs[ridx]
                    emit("meets", lpay, llo, lhi, rpay, slo, shi)
        if ls_batch and rs_batch:
            for name in ("starts", "started-by", "equals"):
                if name not in names:
                    continue
                holds = ATOMS[name].holds
                for lidx in ls_batch:
                    lpay, llo, lhi = ls[lidx]
                    for ridx in rs_batch:
                        rpay, slo, shi = rs[ridx]
                        if holds(llo, lhi, slo, shi):
                            emit(name, lpay, llo, lhi, rpay, slo, shi)
        if le_batch and re_batch:
            for name in ("finishes", "finished-by"):
                if name not in names:
                    continue
                holds = ATOMS[name].holds
                for lidx in le_batch:
                    lpay, llo, lhi = ls[lidx]
                    for ridx in re_batch:
                        rpay, slo, shi = rs[ridx]
                        if holds(llo, lhi, slo, shi):
                            emit(name, lpay, llo, lhi, rpay, slo, shi)

        # -- arrivals enter the active arrays (gapless appends) --
        for lidx in ls_batch:
            pos_l[lidx] = len(active_l)
            lpay, llo, lhi = ls[lidx]
            active_l.append((lidx, lpay, llo, lhi))
        for ridx in rs_batch:
            pos_r[ridx] = len(active_r)
            rpay, slo, shi = rs[ridx]
            active_r.append((ridx, rpay, slo, shi))

        # -- active-array scans for the intersection-style atoms --
        # Arriving left vs active rights: rights that arrived earlier or
        # in this batch; explicit endpoint filters keep each atom exact
        # regardless of the snapshot convention.
        if ls_batch:
            scan_overlaps = "overlaps" in names
            scan_during = "during" in names
            if scan_overlaps or scan_during:
                for lidx in ls_batch:
                    lpay, llo, lhi = ls[lidx]
                    for _, rpay, slo, shi in active_r:
                        if scan_overlaps and slo < llo:
                            # slo == llo pairs are claimed by the
                            # right-arrival scan below; actives with
                            # slo > llo cannot exist yet.
                            emit("overlaps", lpay, llo, lhi, rpay, slo, shi)
                        if scan_during and slo < llo and lhi < shi:
                            emit("during", lpay, llo, lhi, rpay, slo, shi)
        if rs_batch:
            scan_overlaps = "overlaps" in names
            scan_contains = "contains" in names
            if scan_overlaps or scan_contains:
                for ridx in rs_batch:
                    rpay, slo, shi = rs[ridx]
                    for _, lpay, llo, lhi in active_l:
                        if scan_overlaps and llo <= slo:
                            emit("overlaps", lpay, llo, lhi, rpay, slo, shi)
                        if scan_contains and llo < slo and shi < lhi:
                            emit("contains", lpay, llo, lhi, rpay, slo, shi)

        if track:
            depth = len(active_l) + len(active_r)
            if depth > peak:
                peak = depth

        # -- expiries leave via swap-remove; lefts join the retired list --
        for lidx in le_batch:
            slot = pos_l[lidx]
            last = active_l.pop()
            if last[0] != lidx:
                active_l[slot] = last
                pos_l[last[0]] = slot
            pos_l[lidx] = -1
            if "before" in names:
                retired_l.append((ls[lidx][0], ls[lidx][1], ls[lidx][2]))
            if track:
                expiries += 1
        for ridx in re_batch:
            slot = pos_r[ridx]
            last = active_r.pop()
            if last[0] != ridx:
                active_r[slot] = last
                pos_r[last[0]] = slot
            pos_r[ridx] = -1
            if track:
                expiries += 1

    if track:
        stats.incr("allen.events", n_events)
        stats.incr("allen.expiries", expiries)
        stats.peak("allen.active_peak", peak)
        stats.incr("allen.atoms", len(atoms))
    return out


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def lazy_sweep_join(
    left: Sequence[Item],
    right: Sequence[Item],
    predicate: str = "overlaps",
    stats: Optional[ExecutionStats] = None,
) -> List[Pair]:
    """All pairs satisfying ``predicate`` via the lazy endpoint sweep.

    The ``JOIN_STRATEGIES["lazy-sweep"]`` entry. For the default
    ``overlaps`` the output is the same pair multiset as
    :func:`~repro.algorithms.interval_join.forward_scan_join` (each
    intersecting pair once, carrying the intersection interval); any
    other atomic predicate or ``-or-`` union is answered from one shared
    endpoint-event sweep. Inputs need not be sorted.
    """
    atoms = parse_predicate(predicate)
    if atoms == ("overlaps",):
        ls4 = [(payload, ivl.lo, ivl.hi, ivl) for payload, ivl in left]
        rs4 = [(payload, ivl.lo, ivl.hi, ivl) for payload, ivl in right]
        ls4.sort(key=_BY_LO_HI)
        rs4.sort(key=_BY_LO_HI)
        out: List[Pair] = []
        _overlap_sweep(ls4, rs4, out, stats=stats)
        if stats is not None:
            stats.incr("allen.pairs", len(out))
            stats.incr("allen.atoms")
        return out
    fast = Interval._fast
    raw = _event_sweep(_unpack(left), _unpack(right), atoms, stats=stats)
    if stats is not None:
        stats.incr("allen.pairs", len(raw))
    return [(a, b, fast(lo, hi)) for a, b, lo, hi in raw]


def lazy_sweep_pairs_ranked(
    left: Sequence[Tuple[object, int, int]],
    right: Sequence[Tuple[object, int, int]],
    times: Sequence[Number],
    predicate: str = "overlaps",
    stats: Optional[ExecutionStats] = None,
) -> List[Pair]:
    """The sweep over rank-space endpoints (the kernel engines' path).

    ``left``/``right`` are ``(payload, lo_rank, hi_rank)`` triples over a
    shared endpoint rank space whose rank → time table is ``times``
    (:attr:`~repro.kernels.columns.KernelColumns.rank_times`). Emitted
    intervals carry the original times; all predicate comparisons happen
    on the dense int ranks, which is exact because ranking preserves
    order and equality.
    """
    atoms = parse_predicate(predicate)
    ls = sorted(left, key=_BY_LO_HI)
    rs = sorted(right, key=_BY_LO_HI)
    if atoms == ("overlaps",):
        out: List[Pair] = []
        _overlap_sweep_ranked(ls, rs, times, out, stats=stats)
        if stats is not None:
            stats.incr("allen.pairs", len(out))
            stats.incr("allen.atoms")
        return out
    fast = Interval._fast
    raw = _event_sweep(ls, rs, atoms, stats=stats)
    if stats is not None:
        stats.incr("allen.pairs", len(raw))
    return [(a, b, fast(times[lo], times[hi])) for a, b, lo, hi in raw]
