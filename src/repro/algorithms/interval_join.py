"""Interval joins: all overlapping pairs between two interval collections.

Footnote 6 of the paper: given sets R, S of intervals, report all pairs
``(r, s)`` with ``r ∩ s ≠ ∅``. Two implementations:

* :func:`forward_scan_join` — the forward-scan (FS) algorithm of Bouros &
  Mamoulis [26], which the paper's BASELINE uses as "the most efficient
  temporal join algorithm": both inputs sorted by start; whichever current
  interval starts first is joined against the forward run of the other
  list. ``O(n log n + m log m + K)``.
* :func:`index_nested_join` — interval-tree probing, matching footnote 6's
  ``O(|R| log |S| + K)`` query bound after ``O(|S| log |S|)``
  preprocessing. Used when one side is much smaller or pre-indexed.
* :func:`sort_merge_join` — the classic sort/merge family, kept for the
  binary-join ablation.
* :func:`~repro.algorithms.allen.lazy_sweep_join` (registered here as
  ``"lazy-sweep"``) — the cache-efficient lazy sweep with gapless
  array-backed active sets, the only strategy that also answers the
  extended Allen predicates (``predicate=``).

Items are ``(payload, Interval)`` pairs; outputs carry the pair of
payloads and the intersection interval (for ``predicate="before"``, the
gap interval — see :mod:`repro.algorithms.allen`).
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..core.errors import QueryError
from ..core.interval import Interval
from ..datastructures.interval_tree import StaticIntervalTree
from ..obs import ExecutionStats
from .allen import lazy_sweep_join, parse_predicate, predicate_names

A = TypeVar("A")
B = TypeVar("B")
Item = Tuple[A, Interval]
Pair = Tuple[A, B, Interval]


def forward_scan_join(
    left: Sequence[Item], right: Sequence[Item]
) -> List[Pair]:
    """All overlapping pairs via the forward-scan sweep.

    Each overlapping pair is produced exactly once, by the side whose
    interval starts first (ties go to ``left``). Inputs need not be
    sorted; sorting is done here.
    """
    ls = sorted(left, key=lambda it: (it[1].lo, it[1].hi))
    rs = sorted(right, key=lambda it: (it[1].lo, it[1].hi))
    out: List[Pair] = []
    i = j = 0
    nl, nr = len(ls), len(rs)
    while i < nl and j < nr:
        lpay, livl = ls[i]
        rpay, rivl = rs[j]
        if livl.lo <= rivl.lo:
            # left starts first: join with every right starting within it.
            hi = livl.hi
            k = j
            while k < nr:
                rp, ri = rs[k]
                if ri.lo > hi:
                    break
                out.append((lpay, rp, Interval(ri.lo, min(hi, ri.hi))))
                k += 1
            i += 1
        else:
            hi = rivl.hi
            k = i
            while k < nl:
                lp, li = ls[k]
                if li.lo > hi:
                    break
                out.append((lp, rpay, Interval(li.lo, min(hi, li.hi))))
                k += 1
            j += 1
    return out


def index_nested_join(
    left: Sequence[Item], right: Sequence[Item]
) -> List[Pair]:
    """All overlapping pairs via an interval tree on the larger side."""
    if len(left) > len(right):
        swapped = index_nested_join(right, left)
        return [(b, a, ivl) for a, b, ivl in swapped]
    tree: StaticIntervalTree = StaticIntervalTree(
        [(ivl, payload) for payload, ivl in right]
    )
    out: List[Pair] = []
    for payload, ivl in left:
        for rivl, rpayload in tree.overlapping(ivl):
            out.append((payload, rpayload, ivl.intersect(rivl)))  # type: ignore[arg-type]
    return out


def sort_merge_join(
    left: Sequence[Item], right: Sequence[Item]
) -> List[Pair]:
    """All overlapping pairs via endpoint-sorted merge with active lists.

    The classic sort/merge temporal join (Gunadhi & Segev [45] family):
    merge the two start-sorted streams; when a left item arrives, pair it
    with every *active* right item and vice versa. Each active list is a
    min-heap keyed on ``hi`` (with an arrival sequence number so payloads
    are never compared), so expiry is lazy pops of the earliest-ending
    items — amortized O(log n) per expiry instead of the former full
    list rebuild on every arrival, which made long low-selectivity
    merges quadratic. After the pops, the heap's backing list holds
    exactly the live items and is enumerated in place for pairing.
    Output-identical to :func:`forward_scan_join` as a multiset; kept as
    the representative of the sort/merge family for the binary-join
    ablation.
    """
    ls = sorted(left, key=lambda it: (it[1].lo, it[1].hi))
    rs = sorted(right, key=lambda it: (it[1].lo, it[1].hi))
    out: List[Pair] = []
    # Heap entries: (hi, seq, payload, Interval).
    active_left: List[Tuple[float, int, A, Interval]] = []
    active_right: List[Tuple[float, int, B, Interval]] = []
    seq = 0
    i = j = 0
    nl, nr = len(ls), len(rs)
    while i < nl or j < nr:
        take_left = j >= nr or (i < nl and ls[i][1].lo <= rs[j][1].lo)
        if take_left:
            payload, ivl = ls[i]
            i += 1
            lo, hi = ivl.lo, ivl.hi
            while active_right and active_right[0][0] < lo:
                heapq.heappop(active_right)
            for rhi, _, rpayload, _rivl in active_right:
                out.append((payload, rpayload, Interval(lo, min(hi, rhi))))
            heapq.heappush(active_left, (hi, seq, payload, ivl))
        else:
            payload, ivl = rs[j]
            j += 1
            lo, hi = ivl.lo, ivl.hi
            while active_left and active_left[0][0] < lo:
                heapq.heappop(active_left)
            for lhi, _, lpayload, _livl in active_left:
                out.append((lpayload, payload, Interval(lo, min(hi, lhi))))
            heapq.heappush(active_right, (hi, seq, payload, ivl))
        seq += 1
    return out


JOIN_STRATEGIES = {
    "forward-scan": forward_scan_join,
    "index": index_nested_join,
    "sort-merge": sort_merge_join,
    "lazy-sweep": lazy_sweep_join,
}

#: Strategies that answer predicates beyond "overlaps".
PREDICATE_STRATEGIES = frozenset({"lazy-sweep"})

#: The repo-wide default binary strategy (BASELINE, HYBRID residuals,
#: binary_temporal_join). Flipped from "forward-scan" to the lazy sweep
#: after BENCH_allen.json proved the ≥1.3x win on the N=10k overlaps
#: workload; the output pair multiset is identical.
DEFAULT_STRATEGY = "lazy-sweep"


def interval_join(
    left: Sequence[Item],
    right: Sequence[Item],
    strategy: str = DEFAULT_STRATEGY,
    predicate: str = "overlaps",
    stats: Optional[ExecutionStats] = None,
) -> List[Pair]:
    """Dispatch over the binary interval-join families.

    ``predicate`` selects an extended Allen predicate (or ``-or-`` union)
    and requires a strategy in :data:`PREDICATE_STRATEGIES`; the classic
    strategies only answer the default ``"overlaps"``. Unknown strategy
    or predicate names raise :class:`QueryError` listing the valid ones.
    """
    try:
        fn = JOIN_STRATEGIES[strategy]
    except KeyError:
        raise QueryError(
            f"unknown interval join strategy {strategy!r}; "
            f"choose from {sorted(JOIN_STRATEGIES)}"
        ) from None
    atoms = parse_predicate(predicate)
    if strategy in PREDICATE_STRATEGIES:
        return fn(left, right, predicate=predicate, stats=stats)
    if atoms != ("overlaps",):
        raise QueryError(
            f"strategy {strategy!r} only answers predicate 'overlaps'; "
            f"use one of {sorted(PREDICATE_STRATEGIES)} for "
            f"{predicate!r} (atomic predicates: {predicate_names()})"
        )
    return fn(left, right)


def self_overlap_pairs(items: Sequence[Item]) -> List[Pair]:
    """All unordered overlapping pairs within one collection.

    Convenience for workload statistics; pairs are reported once with the
    earlier-starting item first.
    """
    ordered = sorted(items, key=lambda it: (it[1].lo, it[1].hi))
    out: List[Pair] = []
    for idx, (payload, ivl) in enumerate(ordered):
        for other, oivl in ordered[idx + 1 :]:
            if oivl.lo > ivl.hi:
                break
            out.append((payload, other, Interval(oivl.lo, min(ivl.hi, oivl.hi))))
    return out
