"""The §3.3 sweep state for general temporal joins (Algorithm 4).

The dynamic structure is deliberately simple — hashed active tuples per
relation, O(1) updates — and the heavy lifting happens at enumeration: at
each right endpoint the state materializes the bags of a GHD of the query
over the active tuples (GenericJoin) and runs Yannakakis over the bag
tree, restricted to the expiring tuple. Per Theorem 9 this costs
``O(N^fhtw)`` per endpoint, ``O(N^(fhtw+1) + K)`` overall.

Practical refinement (pure pruning, same worst case): before
materializing, the active relations are restricted by a BFS semijoin
cascade seeded at the expiring tuple — every removed row provably joins
with no result involving that tuple, so the output is unchanged while the
per-endpoint cost tracks the *relevant* active subset rather than all of
it. The test-suite checks the state against the naive oracle on random
instances, so the refinement cannot silently change semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.hypergraph import Hypergraph
from ..core.interval import Interval
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..nontemporal.generic_join import generic_join_with_order
from ..nontemporal.ghd import GHD, fhtw_ghd, trivial_ghd
from ..nontemporal.yannakakis import yannakakis
from ..obs import ExecutionStats

Values = Tuple[object, ...]


class GenericGHDState:
    """Sweep state implementing Theorem 9 / Corollary 10.

    With a ``stats`` tracer attached, reports ``ghd.enumerations``
    (expirations that survived the semijoin restriction),
    ``ghd.restrict_pruned`` (expirations proven resultless before any
    materialization), ``ghd.bag_rows`` (per-endpoint bag materialization
    sizes, as an observe distribution) and ``ghd.yannakakis_passes``.
    """

    def __init__(
        self,
        query: JoinQuery,
        database: Optional[Dict[str, TemporalRelation]] = None,
        ghd: Optional[GHD] = None,
        stats: Optional[ExecutionStats] = None,
    ) -> None:
        self.query = query
        hg = query.hypergraph
        if ghd is not None:
            self.ghd = ghd
        elif hg.is_acyclic():
            self.ghd = trivial_ghd(hg)
        else:
            _, self.ghd = fhtw_ghd(hg)
        # Active tuples: relation -> {values -> interval}.
        self._active: Dict[str, Dict[Values, Interval]] = {
            name: {} for name in hg.edge_names
        }
        # Per relation, per attribute: value -> set of active tuples.
        self._attr_index: Dict[str, Dict[str, Dict[object, Set[Values]]]] = {
            name: {a: {} for a in hg.edge(name)} for name in hg.edge_names
        }
        self._edge_attrs: Dict[str, Tuple[str, ...]] = {
            name: hg.edge(name) for name in hg.edge_names
        }
        # Adjacency over relations (shared attributes) for the semijoin BFS.
        self._neighbors: Dict[str, List[Tuple[str, List[str]]]] = {}
        names = hg.edge_names
        for name in names:
            nbrs: List[Tuple[str, List[str]]] = []
            mine = set(hg.edge(name))
            for other in names:
                if other == name:
                    continue
                shared = [a for a in hg.edge(other) if a in mine]
                if shared:
                    nbrs.append((other, shared))
            self._neighbors[name] = nbrs
        # Static per-bag plans.
        self._bag_plans = self._build_bag_plans()
        self._bag_hg = self.ghd.bag_hypergraph()
        self._stats = stats

    # ------------------------------------------------------------------
    # Plans
    # ------------------------------------------------------------------
    def _build_bag_plans(self):
        plans = []
        for bag, lam in self.ghd.bags.items():
            lam_set = set(lam)
            derived: Dict[str, Tuple[str, ...]] = {}
            projections: Dict[str, Tuple[Tuple[int, ...], bool]] = {}
            for name, eattrs in self._edge_attrs.items():
                restricted = tuple(a for a in eattrs if a in lam_set)
                if not restricted:
                    continue
                derived[name] = restricted
                pos = tuple(eattrs.index(a) for a in restricted)
                projections[name] = (pos, len(restricted) == len(eattrs))
            plans.append((bag, lam, Hypergraph(derived), projections))
        return plans

    # ------------------------------------------------------------------
    # SweepState interface
    # ------------------------------------------------------------------
    def insert(self, relation: str, values: Values, interval: Interval) -> None:
        self._active[relation][values] = interval
        index = self._attr_index[relation]
        for attr, value in zip(self._edge_attrs[relation], values):
            index[attr].setdefault(value, set()).add(values)

    def delete(self, relation: str, values: Values, interval: Interval) -> None:
        del self._active[relation][values]
        index = self._attr_index[relation]
        for attr, value in zip(self._edge_attrs[relation], values):
            bucket = index[attr][value]
            bucket.discard(values)
            if not bucket:
                del index[attr][value]

    def enumerate_results(
        self,
        relation: str,
        values: Values,
        interval: Interval,
        out: JoinResultSet,
    ) -> None:
        st = self._stats
        restricted = self._restrict(relation, values)
        if restricted is None:
            if st is not None:
                st.incr("ghd.restrict_pruned")
            return
        if st is not None:
            st.incr("ghd.enumerations")
        bag_db: Dict[str, TemporalRelation] = {}
        for bag, lam, sub_hg, projections in self._bag_plans:
            rel = self._materialize_bag(sub_hg, projections, restricted)
            if st is not None:
                st.observe("ghd.bag_rows", len(rel))
            if len(rel) == 0:
                return
            bag_db[bag] = rel
        results = yannakakis(
            self._bag_hg, bag_db, attr_order=self.query.attrs,
            intersect_intervals=True,
        )
        if st is not None:
            st.incr("ghd.yannakakis_passes")
        out.extend(results.rows)

    # ------------------------------------------------------------------
    # Restriction: semijoin cascade seeded at the expiring tuple
    # ------------------------------------------------------------------
    def _restrict(
        self, relation: str, values: Values
    ) -> Optional[Dict[str, Dict[Values, Interval]]]:
        """Active subsets consistent with the expiring tuple, or ``None``.

        The expiring relation is pinned to exactly the expiring tuple; a
        BFS over the relation adjacency graph semijoins each relation with
        the already-restricted neighbour it was discovered from. Returns
        ``None`` as soon as some relation restricts to empty (the tuple
        participates in no result).
        """
        restricted: Dict[str, Dict[Values, Interval]] = {
            relation: {values: self._active[relation][values]}
        }
        queue = [relation]
        seen = {relation}
        while queue:
            current = queue.pop(0)
            for other, shared in self._neighbors[current]:
                if other in seen:
                    continue
                seen.add(other)
                candidates = self._semijoin_active(other, current, shared, restricted)
                if not candidates:
                    return None
                restricted[other] = candidates
                queue.append(other)
        for name, active in self._active.items():
            if name not in restricted:
                if not active:
                    return None
                restricted[name] = active
        return restricted

    def _semijoin_active(
        self,
        target: str,
        source: str,
        shared: List[str],
        restricted: Dict[str, Dict[Values, Interval]],
    ) -> Dict[Values, Interval]:
        """Rows of ``target`` joining some restricted row of ``source``."""
        source_attrs = self._edge_attrs[source]
        source_pos = [source_attrs.index(a) for a in shared]
        keys = {
            tuple(v[p] for p in source_pos) for v in restricted[source]
        }
        target_attrs = self._edge_attrs[target]
        target_pos = [target_attrs.index(a) for a in shared]
        active = self._active[target]
        # Probe through the attribute index while the key set is small
        # relative to the active set — per-key index probes beat a full
        # scan until the union of probe buckets approaches the scan cost.
        if len(keys) * 4 <= max(4, len(active)):
            index = self._attr_index[target]
            first_attr = shared[0]
            bucket_index = index[first_attr]
            out: Dict[Values, Interval] = {}
            for key in keys:
                bucket = bucket_index.get(key[0])
                if not bucket:
                    continue
                if len(shared) == 1:
                    for v in bucket:
                        out[v] = active[v]
                else:
                    for v in bucket:
                        if tuple(v[p] for p in target_pos) == key:
                            out[v] = active[v]
            return out
        return {
            v: ivl
            for v, ivl in active.items()
            if tuple(v[p] for p in target_pos) in keys
        }

    # ------------------------------------------------------------------
    # Bag materialization (Algorithm 4 lines 2-8)
    # ------------------------------------------------------------------
    def _materialize_bag(
        self,
        sub_hg: Hypergraph,
        projections: Dict[str, Tuple[Tuple[int, ...], bool]],
        restricted: Dict[str, Dict[Values, Interval]],
    ) -> TemporalRelation:
        sub_db: Dict[str, TemporalRelation] = {}
        full_lookups: List[Tuple[str, Tuple[int, ...], Dict[Values, Interval]]] = []
        for name in sub_hg.edge_names:
            pos, is_full = projections[name]
            rows = restricted[name]
            if is_full:
                proj = {tuple(v[p] for p in pos): ivl for v, ivl in rows.items()}
            else:
                proj = {}
                for v in rows:
                    proj[tuple(v[p] for p in pos)] = Interval.always()
            rel = TemporalRelation(name, sub_hg.edge(name), check_distinct=False)
            rel._rows = list(proj.items())
            sub_db[name] = rel
            if is_full:
                full_lookups.append((name, None, proj))
        tuples, order = generic_join_with_order(sub_hg, sub_db)
        # Attach intervals: intersect the valid intervals of every fully
        # covered edge's constituent tuple.
        order_pos = {a: i for i, a in enumerate(order)}
        lookups: List[Tuple[Tuple[int, ...], Dict[Values, Interval]]] = []
        for name, _, proj in full_lookups:
            eattrs = sub_hg.edge(name)
            lookups.append((tuple(order_pos[a] for a in eattrs), proj))
        out = TemporalRelation("bag", order, check_distinct=False)
        rows = []
        for t in tuples:
            interval = Interval.always()
            alive = True
            for pos, proj in lookups:
                ivl = proj[tuple(t[p] for p in pos)]
                interval = interval.intersect(ivl)
                if interval is None:
                    alive = False
                    break
            if alive:
                rows.append((t, interval))
        out._rows = rows
        return out
