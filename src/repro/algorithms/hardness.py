"""Executable hardness constructions (Section 5).

Theorem 14 reduces triangle listing — 3SUM-hard to do in ``O(N^(4/3-ε))``
[69] — to the line-3 temporal join. :func:`triangle_listing_instance`
builds the reduction's temporal instance from a graph, and
:func:`triangles_from_line3_results` maps join results back to triangles,
so the one-to-one correspondence claimed in the proof is testable (and is
tested).

Theorem 15's *non-temporal counterpart* ``Q_S`` — turn the valid interval
of the relations in ``S ⊆ E`` into an ordinary join attribute — is built
by :func:`nontemporal_counterpart`; :func:`counterpart_instance` performs
the accompanying instance translation for instant-stamped inputs, the
case the reduction's hard instances use.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..core.errors import QueryError
from ..core.hypergraph import Hypergraph
from ..core.interval import Interval
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet


def triangle_listing_instance(
    edges: Iterable[Tuple[int, int]]
) -> Dict[str, TemporalRelation]:
    """The Theorem 14 instance of ``Q_L3`` for an undirected graph.

    For each edge ``(u, v)``:

    * ``⟨(u+v, u), [v, v]⟩`` and ``⟨(u+v, v), [u, u]⟩`` into ``R1``;
    * ``⟨(u, v), (-inf, +inf)⟩`` and ``⟨(v, u), (-inf, +inf)⟩`` into ``R2``;
    * ``⟨(u, u+v), [v, v]⟩`` and ``⟨(v, u+v), [u, u]⟩`` into ``R3``.

    Vertices must be integers (the construction adds them).
    """
    r1, r2, r3 = [], [], []
    seen: Set[Tuple[int, int]] = set()
    for u, v in edges:
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        r1.append(((u + v, u), Interval.instant(v)))
        r1.append(((u + v, v), Interval.instant(u)))
        r2.append(((u, v), Interval.always()))
        r2.append(((v, u), Interval.always()))
        r3.append(((u, u + v), Interval.instant(v)))
        r3.append(((v, u + v), Interval.instant(u)))
    return {
        "R1": TemporalRelation("R1", ("x1", "x2"), r1),
        "R2": TemporalRelation("R2", ("x2", "x3"), r2),
        "R3": TemporalRelation("R3", ("x3", "x4"), r3),
    }


def triangles_from_line3_results(
    results: JoinResultSet,
) -> Set[FrozenSet[int]]:
    """Recover the triangle set from the reduction's join results.

    A result ``⟨(s, b, c, t), [w, w]⟩`` arises from edges ``(b, w)`` (via
    ``s = b + w``), ``(b, c)``, and ``(c, w)`` (via ``t = c + w``) — the
    triangle ``{b, c, w}``.
    """
    triangles: Set[FrozenSet[int]] = set()
    for values, interval in results:
        _, b, c, _ = values
        w = interval.lo
        triangles.add(frozenset((b, c, int(w))))
    return triangles


def nontemporal_counterpart(
    query: JoinQuery, s_edges: Sequence[str], time_attr: str = "__t__"
) -> JoinQuery:
    """Theorem 15's counterpart query ``Q_S``.

    Every edge in ``s_edges`` gains the shared time attribute; the rest
    are unchanged. The temporal join of ``Q`` is at least as hard as the
    non-temporal join of any such ``Q_S``.
    """
    edges: Dict[str, Tuple[str, ...]] = {}
    s = set(s_edges)
    for name in query.edge_names:
        attrs = query.edge(name)
        edges[name] = attrs + (time_attr,) if name in s else attrs
    return JoinQuery(edges, attr_order=tuple(query.attrs) + (time_attr,))


def counterpart_instance(
    query: JoinQuery,
    database: Dict[str, TemporalRelation],
    s_edges: Sequence[str],
    time_attr: str = "__t__",
) -> Dict[str, TemporalRelation]:
    """Instance translation for :func:`nontemporal_counterpart`.

    Relations in ``S`` must be instant-stamped (``[t, t]`` intervals): the
    instant becomes the value of the new time attribute and intervals turn
    into ``(-inf, +inf)``. Relations outside ``S`` are passed through.
    The non-temporal join of the result equals (modulo the extra column)
    the temporal join of the original when the original's non-``S``
    relations are non-temporal — exactly the shape of the hard instances.
    """
    s = set(s_edges)
    out: Dict[str, TemporalRelation] = {}
    for name in query.edge_names:
        rel = database[name]
        if name not in s:
            out[name] = rel
            continue
        rows = []
        for values, interval in rel:
            if not interval.is_instant:
                raise QueryError(
                    f"counterpart translation needs instant stamps in {name!r}, "
                    f"found {interval!r}"
                )
            rows.append((values + (interval.lo,), Interval.always()))
        out[name] = TemporalRelation(
            name, rel.attrs + (time_attr,), rows
        )
    return out
