"""The §3.2 dynamic structure for hierarchical temporal joins.

This is the data structure ``D`` of Theorem 6, built on the attribute tree
/ generalized join tree of Figure 5. Each tree node ``u`` maintains
``X_u`` — the projection onto ``V_u`` (the root-to-``u`` path attributes)
of the join of the *active* tuples stored at the leaves of ``u``'s
subtree (Lemma 3):

    ``X_u = ∩_{v ∈ C(u)} π_u(X_v)``

Implementation notes
--------------------
* ``V_{p(u)}`` is always a prefix of ``V_u``, so every projection in the
  structure is a tuple-prefix slice — no per-operation attribute
  arithmetic.
* Internal nodes maintain ``X_u`` by *support counting*: a ``V_u`` tuple
  is present iff all ``|C(u)|`` children have a non-empty group for it.
  Insert/delete transitions propagate upward only while a group flips
  between empty and non-empty, so each tuple update costs O(depth) = O(1)
  dictionary operations — in the comparison model of the paper this is
  the O(log N) update of Theorem 6; hashing makes it expected O(1).
* ENUMERATE follows Algorithm 2 (root-path membership check) and REPORT
  follows Algorithm 3 / Lemma 4, returning per-subtree fragment lists
  that are Cartesian-combined at internal nodes. Every recursive call is
  guaranteed at least one output, which yields the O(K(a)) enumeration
  bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.classification import AttributeTree
from ..core.errors import QueryError
from ..core.interval import Interval
from ..core.query import JoinQuery
from ..core.result import JoinResultSet
from ..obs import ExecutionStats

Values = Tuple[object, ...]
Fragment = Tuple[Dict[str, object], Interval]


class _NodeState:
    """Per-node dynamic state (leaf rows or internal support counters)."""

    __slots__ = ("groups", "support", "members")

    def __init__(self, is_leaf: bool) -> None:
        if is_leaf:
            # group key (V_parent tuple) -> {V_node tuple -> Interval}
            self.groups: Dict[Values, Dict[Values, Interval]] = {}
            self.support = None
            self.members = None
        else:
            self.groups = None
            # V_node tuple -> number of children with a non-empty group
            self.support: Dict[Values, int] = {}
            # group key (V_parent tuple) -> set of member V_node tuples
            self.members: Dict[Values, Set[Values]] = {}


class HierarchicalState:
    """Sweep state implementing Theorem 6 for hierarchical queries.

    With a ``stats`` tracer attached the state reports ``hier.inserts`` /
    ``hier.deletes`` (leaf ``X_u`` set operations), ``hier.support_updates``
    (support-count transitions walked during upward propagation) and
    ``hier.report_fragments`` (fragments returned by Algorithm 3). The
    ``stats=None`` path adds only a predicate on a local per operation.
    """

    def __init__(
        self, query: JoinQuery, stats: Optional[ExecutionStats] = None
    ) -> None:
        if not query.is_hierarchical:
            raise QueryError(
                f"HierarchicalState requires a hierarchical query, got {query!r}; "
                "r-hierarchical queries must be reduced first "
                "(core.classification.reduce_instance)"
            )
        self.query = query
        self.tree = AttributeTree(query.hypergraph)
        nodes = self.tree.nodes
        self._state: List[_NodeState] = [
            _NodeState(is_leaf=node.is_leaf) for node in nodes
        ]
        self._nchildren: List[int] = [len(node.children) for node in nodes]
        self._path_len: List[int] = [len(node.path_attrs) for node in nodes]
        self._parent_path_len: List[int] = [
            0 if node.parent is None else len(nodes[node.parent].path_attrs)
            for node in nodes
        ]
        # Per relation: permutation from the query edge's attribute order
        # to the leaf's path order, and the leaf id.
        self._leaf_id: Dict[str, int] = dict(self.tree.leaf_of_relation)
        self._perm: Dict[str, Tuple[int, ...]] = {}
        for name, leaf in self._leaf_id.items():
            eattrs = query.edge(name)
            path = nodes[leaf].path_attrs
            pos = {a: i for i, a in enumerate(eattrs)}
            self._perm[name] = tuple(pos[a] for a in path)
        self._out_attrs = query.attrs
        self._stats = stats

    # ------------------------------------------------------------------
    # INSERT / DELETE with upward propagation
    # ------------------------------------------------------------------
    def _path_values(self, relation: str, values: Values) -> Values:
        """Reorder a relation tuple into its leaf's path-attribute order."""
        return tuple(values[i] for i in self._perm[relation])

    def insert(self, relation: str, values: Values, interval: Interval) -> None:
        leaf = self._leaf_id[relation]
        pv = self._path_values(relation, values)
        gkey = pv[: self._parent_path_len[leaf]]
        groups = self._state[leaf].groups
        if self._stats is not None:
            self._stats.incr("hier.inserts")
        bucket = groups.get(gkey)
        if bucket is None:
            bucket = {pv: interval}
            groups[gkey] = bucket
            self._signal_nonempty(self.tree.nodes[leaf].parent, gkey)
        else:
            if pv in bucket:
                # The model requires distinct tuples per relation; a silent
                # overwrite here would corrupt the delete bookkeeping.
                raise QueryError(
                    f"duplicate active tuple {pv} in relation {relation!r}; "
                    "the temporal model requires distinct tuples "
                    "(see IntervalSet/explode_interval_sets for "
                    "multi-interval data)"
                )
            bucket[pv] = interval

    def delete(self, relation: str, values: Values, interval: Interval) -> None:
        leaf = self._leaf_id[relation]
        pv = self._path_values(relation, values)
        gkey = pv[: self._parent_path_len[leaf]]
        groups = self._state[leaf].groups
        if self._stats is not None:
            self._stats.incr("hier.deletes")
        bucket = groups[gkey]
        del bucket[pv]
        if not bucket:
            del groups[gkey]
            self._signal_empty(self.tree.nodes[leaf].parent, gkey)

    def _signal_nonempty(self, node_id: Optional[int], key: Values) -> None:
        """A child's group ``key`` (a ``V_node`` tuple) became non-empty."""
        st = self._stats
        while node_id is not None:
            if st is not None:
                st.incr("hier.support_updates")
            state = self._state[node_id]
            count = state.support.get(key, 0) + 1
            state.support[key] = count
            if count != self._nchildren[node_id]:
                return
            # key joins X_node.
            gkey = key[: self._parent_path_len[node_id]]
            members = state.members.get(gkey)
            if members is None:
                members = set()
                state.members[gkey] = members
                members.add(key)
                node_id = self.tree.nodes[node_id].parent
                key = gkey
                continue  # group flipped non-empty: propagate
            members.add(key)
            return

    def _signal_empty(self, node_id: Optional[int], key: Values) -> None:
        """A child's group ``key`` became empty."""
        st = self._stats
        while node_id is not None:
            if st is not None:
                st.incr("hier.support_updates")
            state = self._state[node_id]
            count = state.support[key] - 1
            was_full = state.support[key] == self._nchildren[node_id]
            if count == 0:
                del state.support[key]
            else:
                state.support[key] = count
            if not was_full:
                return
            gkey = key[: self._parent_path_len[node_id]]
            members = state.members[gkey]
            members.discard(key)
            if members:
                return
            del state.members[gkey]
            node_id = self.tree.nodes[node_id].parent
            key = gkey

    # ------------------------------------------------------------------
    # ENUMERATE (Algorithm 2) + REPORT (Algorithm 3)
    # ------------------------------------------------------------------
    def enumerate_results(
        self,
        relation: str,
        values: Values,
        interval: Interval,
        out: JoinResultSet,
    ) -> None:
        leaf = self._leaf_id[relation]
        pv = self._path_values(relation, values)
        # Algorithm 2: walk leaf -> root checking membership of π_u(a).
        node_id = self.tree.nodes[leaf].parent
        while node_id is not None:
            state = self._state[node_id]
            key = pv[: self._path_len[node_id]]
            if state.support.get(key, 0) != self._nchildren[node_id]:
                return
            node_id = self.tree.nodes[node_id].parent
        # Algorithm 3 from the root.
        binding: Dict[str, object] = {}
        leaf_path = self.tree.nodes[leaf].path_attrs
        for attr, value in zip(leaf_path, pv):
            binding[attr] = value
        fragments = self._report(self.tree.root.node_id, binding)
        if self._stats is not None:
            self._stats.incr("hier.report_fragments", len(fragments))
        attrs = self._out_attrs
        for fragment, result_interval in fragments:
            row = tuple(
                fragment[a] if a in fragment else binding[a] for a in attrs
            )
            out.append(row, result_interval)

    def _report(self, node_id: int, binding: Dict[str, object]) -> List[Fragment]:
        """Lemma 4: join results of the subtree, compatible with ``binding``.

        Returns fragments ``(newly bound attrs, interval)``; the interval
        is the intersection of the intervals of all leaf tuples used in
        the fragment.
        """
        node = self.tree.nodes[node_id]
        state = self._state[node_id]

        if node.is_leaf:
            glen = self._parent_path_len[node_id]
            path = node.path_attrs
            if node.attr is None or node.attr in binding:
                # Fully bound: exact lookup (semi-join with a single row).
                key = tuple(binding[a] for a in path)
                bucket = state.groups.get(key[:glen])
                if bucket is None:
                    return []
                hit = bucket.get(key)
                return [] if hit is None else [({}, hit)]
            gkey = tuple(binding[a] for a in path[:glen])
            bucket = state.groups.get(gkey)
            if bucket is None:
                return []
            attr = node.attr
            return [({attr: pv[-1]}, ivl) for pv, ivl in bucket.items()]

        if node.attr is None or node.attr in binding:
            # Case 2: V_u ⊆ supp(binding) — Cartesian product of children.
            return self._product_of_children(node_id, binding)

        # Case 3: extend binding with every member of the matching group.
        glen = self._parent_path_len[node_id]
        gkey = tuple(binding[a] for a in node.path_attrs[:glen])
        members = state.members.get(gkey)
        if not members:
            return []
        attr = node.attr
        results: List[Fragment] = []
        for member in list(members):
            value = member[-1]
            binding[attr] = value
            for fragment, interval in self._product_of_children(node_id, binding):
                merged = dict(fragment)
                merged[attr] = value
                results.append((merged, interval))
            del binding[attr]
        return results

    def _product_of_children(
        self, node_id: int, binding: Dict[str, object]
    ) -> List[Fragment]:
        """Cartesian combination of child REPORTs (Algorithm 3, line 7)."""
        combined: List[Fragment] = [({}, Interval.always())]
        for child in self.tree.nodes[node_id].children:
            child_fragments = self._report(child, binding)
            if not child_fragments:
                return []
            new: List[Fragment] = []
            for fragment, interval in combined:
                for cfragment, civl in child_fragments:
                    joint = interval.intersect(civl)
                    if joint is None:
                        continue
                    if cfragment:
                        merged = dict(fragment)
                        merged.update(cfragment)
                    else:
                        merged = fragment
                    new.append((merged, joint))
            combined = new
            if not combined:
                return []
        return combined
