"""Top-k most durable temporal join results.

Semertzidis & Pitoura [73] (discussed in the paper's related work) find
the top-k *durable* graph patterns; the paper instead returns everything
above a threshold τ. This module bridges the two: the k most durable
results of any temporal join, without a user-supplied threshold.

Strategy — *durability probing*: the τ-durable join with a large τ is
tiny and cheap (the shrink transform drops most input outright), so we
probe geometrically decreasing thresholds until at least k results
survive, then keep the k most durable of that last run. Each probe costs
roughly an output-sensitive join on the surviving input, and thresholds
shrink the input fast, so the total cost is dominated by the final probe
— which is the cheapest run that still contains the answer. Ties at the
k-th durability are all returned (so the result may exceed k), matching
the usual top-k-with-ties semantics; pass ``break_ties=True`` to cut at
exactly k.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

from ..core.interval import Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from .registry import temporal_join


def top_k_durable(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    k: int,
    algorithm: str = "auto",
    break_ties: bool = False,
    initial_tau: Optional[Number] = None,
) -> JoinResultSet:
    """The k most durable temporal join results (plus ties, by default).

    Parameters
    ----------
    k:
        How many results to return; ``k <= 0`` returns an empty set.
    algorithm:
        Forwarded to :func:`repro.algorithms.registry.temporal_join` for
        every probe.
    break_ties:
        Cut at exactly ``k`` rows (deterministically, by tuple order)
        instead of returning every result tied with the k-th.
    initial_tau:
        First probe threshold; defaults to the largest input interval
        duration (no result can be more durable than its shortest
        constituent, so probing above that is pointless).
    """
    if k <= 0:
        return JoinResultSet(query.attrs)
    query.validate(database)

    max_duration = _max_input_duration(query, database)
    if max_duration <= 0:
        # All inputs are instants: every result has durability 0.
        full = temporal_join(query, database, tau=0, algorithm=algorithm)
        return _take(full, k, break_ties)

    tau = initial_tau if initial_tau is not None else max_duration
    seen: Optional[JoinResultSet] = None
    while True:
        probe = temporal_join(query, database, tau=tau, algorithm=algorithm)
        if len(probe) >= k or tau <= 0:
            seen = probe
            break
        seen = probe
        if tau < 1e-9 * max_duration:
            tau = 0
        else:
            tau = tau / 2 if tau > 1 else 0
    if len(seen) < k and tau > 0:  # pragma: no cover - loop exits at tau 0
        seen = temporal_join(query, database, tau=0, algorithm=algorithm)
    return _take(seen, k, break_ties)


def _take(results: JoinResultSet, k: int, break_ties: bool) -> JoinResultSet:
    ranked = sorted(
        results.rows, key=lambda row: (-row[1].duration, row[0], row[1].lo)
    )
    if len(ranked) <= k:
        return JoinResultSet(results.attrs, ranked)
    if break_ties:
        return JoinResultSet(results.attrs, ranked[:k])
    cutoff = ranked[k - 1][1].duration
    kept = [row for row in ranked if row[1].duration >= cutoff]
    return JoinResultSet(results.attrs, kept)


def _max_input_duration(
    query: JoinQuery, database: Mapping[str, TemporalRelation]
) -> Number:
    best: Number = 0
    for name in query.edge_names:
        for _, interval in database[name]:
            if interval.duration > best and interval.is_bounded:
                best = interval.duration
    return best


def durability_histogram(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    thresholds: List[Number],
    algorithm: str = "auto",
) -> dict:
    """Result counts at each durability threshold (the Figure 1 counter).

    Runs one τ = min(thresholds) join and counts by threshold — cheaper
    than one join per threshold when the smallest threshold already
    prunes well.
    """
    base = min(thresholds)
    results = temporal_join(query, database, tau=base, algorithm=algorithm)
    return results.count_by_thresholds(sorted(thresholds))
